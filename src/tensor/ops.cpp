#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/profiler.h"
#include "tensor/gemm.h"
#include "util/parallel.h"

namespace dance::tensor::ops {

namespace {

/// Grain for loops parallelized over the rows of an [N, D] tensor: target
/// ~2k elements of work per chunk so narrow matrices don't over-schedule.
long row_grain(int d) { return std::max(1L, 2048L / std::max(1, d)); }

/// Create the result node of an op. If no parent needs gradients, the
/// backward closure and parent links are dropped so constant subgraphs cost
/// nothing at backward time.
Variable make_result(Tensor value, std::vector<std::shared_ptr<Node>> parents,
                     std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool any = false;
  for (const auto& p : parents) {
    if (p && p->requires_grad) any = true;
  }
  node->requires_grad = any;
  if (any) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Variable::from_node(std::move(node));
}

void check_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (!a.value().same_shape(b.value())) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.value().shape_str() + " vs " +
                                b.value().shape_str());
  }
}

bool wants(const std::shared_ptr<Node>& n) { return n && n->requires_grad; }

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "add");
  Tensor out = a.value();
  out.add_(b.value());
  return make_result(std::move(out), {a.node(), b.node()}, [](Node& self) {
    for (int k = 0; k < 2; ++k) {
      auto& p = self.parents[static_cast<std::size_t>(k)];
      if (!wants(p)) continue;
      for (std::size_t i = 0; i < self.grad.numel(); ++i) p->grad[i] += self.grad[i];
    }
  });
}

Variable add_rowvec(const Variable& a, const Variable& bias) {
  if (a.value().rank() != 2 || bias.value().rank() != 1 ||
      a.value().cols() != bias.value().dim(0)) {
    throw std::invalid_argument("add_rowvec: expected [N,D] + [D]");
  }
  const int n = a.value().rows();
  const int d = a.value().cols();
  Tensor out = a.value();
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) out.at(r, c) += bias.value()[static_cast<std::size_t>(c)];
  }
  return make_result(std::move(out), {a.node(), bias.node()}, [n, d](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (wants(pa)) pa->grad.add_(self.grad);
    if (wants(pb)) {
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < d; ++c) {
          pb->grad[static_cast<std::size_t>(c)] += self.grad.at(r, c);
        }
      }
    }
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.value();
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] -= b.value()[i];
  return make_result(std::move(out), {a.node(), b.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (wants(pa)) pa->grad.add_(self.grad);
    if (wants(pb)) {
      for (std::size_t i = 0; i < self.grad.numel(); ++i) pb->grad[i] -= self.grad[i];
    }
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.value();
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] *= b.value()[i];
  return make_result(std::move(out), {a.node(), b.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    for (std::size_t i = 0; i < self.grad.numel(); ++i) {
      if (wants(pa)) pa->grad[i] += self.grad[i] * pb->value[i];
      if (wants(pb)) pb->grad[i] += self.grad[i] * pa->value[i];
    }
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value();
  out.scale_(s);
  return make_result(std::move(out), {a.node()}, [s](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    for (std::size_t i = 0; i < self.grad.numel(); ++i) pa->grad[i] += s * self.grad[i];
  });
}

Variable scale_by(const Variable& a, const Variable& s) {
  if (s.value().numel() != 1) {
    throw std::invalid_argument("scale_by: scalar variable must have 1 element");
  }
  const float sv = s.value()[0];
  Tensor out = a.value();
  out.scale_(sv);
  return make_result(std::move(out), {a.node(), s.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& ps = self.parents[1];
    const float sval = ps->value[0];
    float acc = 0.0F;
    for (std::size_t i = 0; i < self.grad.numel(); ++i) {
      if (wants(pa)) pa->grad[i] += self.grad[i] * sval;
      acc += self.grad[i] * pa->value[i];
    }
    if (wants(ps)) ps->grad[0] += acc;
  });
}

Variable add_const(const Variable& a, const Tensor& c) {
  if (!a.value().same_shape(c)) throw std::invalid_argument("add_const: shape mismatch");
  Tensor out = a.value();
  out.add_(c);
  return make_result(std::move(out), {a.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    if (wants(pa)) pa->grad.add_(self.grad);
  });
}

Variable mul_rowvec(const Variable& a, const Tensor& row) {
  if (a.value().rank() != 2 || row.rank() != 1 || a.value().cols() != row.dim(0)) {
    throw std::invalid_argument("mul_rowvec: expected [N,D] * [D]");
  }
  const int n = a.value().rows();
  const int d = a.value().cols();
  Tensor out = a.value();
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) out.at(r, c) *= row[static_cast<std::size_t>(c)];
  }
  auto scale_row = std::make_shared<Tensor>(row);
  return make_result(std::move(out), {a.node()}, [scale_row, n, d](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < d; ++c) {
        pa->grad.at(r, c) +=
            self.grad.at(r, c) * (*scale_row)[static_cast<std::size_t>(c)];
      }
    }
  });
}

Variable matmul(const Variable& a, const Variable& b) {
  if (a.value().rank() != 2 || b.value().rank() != 2 ||
      a.value().cols() != b.value().rows()) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.value().shape_str() + " x " +
                                b.value().shape_str());
  }
  const int n = a.value().rows();
  const int k = a.value().cols();
  const int m = b.value().cols();
  Tensor out({n, m});
  {
    DANCE_PROFILE_SCOPE("tensor.matmul");
    // Shared blocked kernel (tensor/gemm.h): cache-tiled, pool-partitioned,
    // bit-identical to the historical naive loop — including the zero-skip
    // that is only sound while B is finite everywhere (0 * NaN and 0 * inf
    // must produce NaN, not silently vanish; poisoned activations have to
    // keep propagating). The dance::infer plan executor runs the same
    // kernel, which is what makes fused inference bit-identical to this op.
    gemm::gemm(a.value().data(), b.value().data(), out.data(), n, k, m);
  }
  return make_result(std::move(out), {a.node(), b.node()}, [n, k, m](Node& self) {
    DANCE_PROFILE_SCOPE("tensor.matmul.bwd");
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    const float* g = self.grad.data();
    if (wants(pa)) {
      // dA = dC * B^T (rows of dA are independent -> parallel over i)
      const float* bv = pb->value.data();
      float* ga = pa->grad.data();
      util::parallel_for(0, n, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          for (int kk = 0; kk < k; ++kk) {
            const float* brow = bv + static_cast<std::ptrdiff_t>(kk) * m;
            const float* grow = g + static_cast<std::ptrdiff_t>(i) * m;
            float acc = 0.0F;
            for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
            ga[i * k + kk] += acc;
          }
        }
      }, /*grain=*/std::max(1L, 65536L / std::max(1, k * m)));
    }
    if (wants(pb)) {
      // dB = A^T * dC (rows of dB are independent -> parallel over kk)
      const float* av = pa->value.data();
      float* gb = pb->grad.data();
      // Mirror of the forward zero-skip: dropping `a_ik * grow` for a zero
      // activation is only sound while the upstream gradient is entirely
      // finite — 0 * NaN must poison dB, not disappear.
      bool g_finite = true;
      for (std::size_t i = 0; i < self.grad.numel(); ++i) {
        if (!std::isfinite(g[i])) {
          g_finite = false;
          break;
        }
      }
      util::parallel_for(0, k, [&](long lo, long hi) {
        for (long kk = lo; kk < hi; ++kk) {
          float* gbrow = gb + static_cast<std::ptrdiff_t>(kk) * m;
          for (int i = 0; i < n; ++i) {
            const float a_ik = av[static_cast<std::ptrdiff_t>(i) * k + kk];
            if (a_ik == 0.0F && g_finite) continue;
            const float* grow = g + static_cast<std::ptrdiff_t>(i) * m;
            for (int j = 0; j < m; ++j) gbrow[j] += a_ik * grow[j];
          }
        }
      }, /*grain=*/std::max(1L, 65536L / std::max(1, n * m)));
    }
  });
}

Variable relu(const Variable& a) {
  Tensor out = a.value();
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.0F, out[i]);
  return make_result(std::move(out), {a.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    for (std::size_t i = 0; i < self.grad.numel(); ++i) {
      if (self.value[i] > 0.0F) pa->grad[i] += self.grad[i];
    }
  });
}

Variable sigmoid(const Variable& a) {
  Tensor out = a.value();
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = 1.0F / (1.0F + std::exp(-out[i]));
  }
  return make_result(std::move(out), {a.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    for (std::size_t i = 0; i < self.grad.numel(); ++i) {
      const float y = self.value[i];
      pa->grad[i] += self.grad[i] * y * (1.0F - y);
    }
  });
}

namespace {
// Rows are independent and each row's reduction stays inside one lane, so
// the result is bit-identical to a serial pass at any thread count.
void softmax_rows_inplace(Tensor& t) {
  const int n = t.rows();
  const int d = t.cols();
  util::parallel_for(0, n, [&](long lo, long hi) {
    for (long r = lo; r < hi; ++r) {
      const int ri = static_cast<int>(r);
      float mx = t.at(ri, 0);
      for (int c = 1; c < d; ++c) mx = std::max(mx, t.at(ri, c));
      float sum = 0.0F;
      for (int c = 0; c < d; ++c) {
        t.at(ri, c) = std::exp(t.at(ri, c) - mx);
        sum += t.at(ri, c);
      }
      for (int c = 0; c < d; ++c) t.at(ri, c) /= sum;
    }
  }, row_grain(d));
}
}  // namespace

Variable softmax_rows(const Variable& a) {
  if (a.value().rank() != 2) throw std::invalid_argument("softmax_rows: rank != 2");
  DANCE_PROFILE_SCOPE("tensor.softmax_rows");
  Tensor out = a.value();
  softmax_rows_inplace(out);
  const int n = out.rows();
  const int d = out.cols();
  return make_result(std::move(out), {a.node()}, [n, d](Node& self) {
    DANCE_PROFILE_SCOPE("tensor.softmax_rows.bwd");
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    util::parallel_for(0, n, [&](long lo, long hi) {
      for (long r = lo; r < hi; ++r) {
        const int ri = static_cast<int>(r);
        float dot = 0.0F;
        for (int c = 0; c < d; ++c) dot += self.grad.at(ri, c) * self.value.at(ri, c);
        for (int c = 0; c < d; ++c) {
          pa->grad.at(ri, c) += self.value.at(ri, c) * (self.grad.at(ri, c) - dot);
        }
      }
    }, row_grain(d));
  });
}

Variable log_softmax_rows(const Variable& a) {
  if (a.value().rank() != 2) throw std::invalid_argument("log_softmax_rows: rank != 2");
  DANCE_PROFILE_SCOPE("tensor.log_softmax_rows");
  const int n = a.value().rows();
  const int d = a.value().cols();
  Tensor out = a.value();
  util::parallel_for(0, n, [&](long lo, long hi) {
    for (long r = lo; r < hi; ++r) {
      const int ri = static_cast<int>(r);
      float mx = out.at(ri, 0);
      for (int c = 1; c < d; ++c) mx = std::max(mx, out.at(ri, c));
      float sum = 0.0F;
      for (int c = 0; c < d; ++c) sum += std::exp(out.at(ri, c) - mx);
      const float lse = mx + std::log(sum);
      for (int c = 0; c < d; ++c) out.at(ri, c) -= lse;
    }
  }, row_grain(d));
  return make_result(std::move(out), {a.node()}, [n, d](Node& self) {
    DANCE_PROFILE_SCOPE("tensor.log_softmax_rows.bwd");
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    util::parallel_for(0, n, [&](long lo, long hi) {
      for (long r = lo; r < hi; ++r) {
        const int ri = static_cast<int>(r);
        float gsum = 0.0F;
        for (int c = 0; c < d; ++c) gsum += self.grad.at(ri, c);
        for (int c = 0; c < d; ++c) {
          pa->grad.at(ri, c) +=
              self.grad.at(ri, c) - std::exp(self.value.at(ri, c)) * gsum;
        }
      }
    }, row_grain(d));
  });
}

Variable concat_cols(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: no inputs");
  const int n = parts.front().value().rows();
  int total = 0;
  for (const auto& p : parts) {
    if (p.value().rank() != 2 || p.value().rows() != n) {
      throw std::invalid_argument("concat_cols: row mismatch");
    }
    total += p.value().cols();
  }
  Tensor out({n, total});
  std::vector<int> widths;
  widths.reserve(parts.size());
  int off = 0;
  for (const auto& p : parts) {
    const int w = p.value().cols();
    widths.push_back(w);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < w; ++c) out.at(r, off + c) = p.value().at(r, c);
    }
    off += w;
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.node());
  return make_result(std::move(out), std::move(parents), [n, widths](Node& self) {
    int off2 = 0;
    for (std::size_t k = 0; k < widths.size(); ++k) {
      auto& p = self.parents[k];
      const int w = widths[k];
      if (wants(p)) {
        for (int r = 0; r < n; ++r) {
          for (int c = 0; c < w; ++c) p->grad.at(r, c) += self.grad.at(r, off2 + c);
        }
      }
      off2 += w;
    }
  });
}

Variable slice_cols(const Variable& a, int from, int to) {
  if (a.value().rank() != 2 || from < 0 || to > a.value().cols() || from >= to) {
    throw std::invalid_argument("slice_cols: bad range");
  }
  const int n = a.value().rows();
  const int w = to - from;
  Tensor out({n, w});
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < w; ++c) out.at(r, c) = a.value().at(r, from + c);
  }
  return make_result(std::move(out), {a.node()}, [n, w, from](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < w; ++c) pa->grad.at(r, from + c) += self.grad.at(r, c);
    }
  });
}

Variable mean_all(const Variable& a) {
  const std::size_t n = a.value().numel();
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += a.value()[i];
  Tensor out({1});
  out[0] = acc / static_cast<float>(n);
  return make_result(std::move(out), {a.node()}, [n](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    const float g = self.grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) pa->grad[i] += g;
  });
}

Variable sum_all(const Variable& a) {
  const std::size_t n = a.value().numel();
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += a.value()[i];
  Tensor out({1});
  out[0] = acc;
  return make_result(std::move(out), {a.node()}, [n](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    const float g = self.grad[0];
    for (std::size_t i = 0; i < n; ++i) pa->grad[i] += g;
  });
}

Variable cross_entropy(const Variable& logits, const std::vector<int>& labels) {
  if (logits.value().rank() != 2 ||
      static_cast<std::size_t>(logits.value().rows()) != labels.size()) {
    throw std::invalid_argument("cross_entropy: batch mismatch");
  }
  DANCE_PROFILE_SCOPE("tensor.cross_entropy");
  const int n = logits.value().rows();
  const int d = logits.value().cols();
  // probs are captured by the backward closure.
  auto probs = std::make_shared<Tensor>(logits.value());
  softmax_rows_inplace(*probs);
  float loss = 0.0F;
  for (int r = 0; r < n; ++r) {
    const float p = std::max(probs->at(r, labels[static_cast<std::size_t>(r)]), 1e-12F);
    loss -= std::log(p);
  }
  Tensor out({1});
  out[0] = loss / static_cast<float>(n);
  return make_result(std::move(out), {logits.node()},
                     [probs, labels, n, d](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    const float g = self.grad[0] / static_cast<float>(n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < d; ++c) {
        const float ind = (labels[static_cast<std::size_t>(r)] == c) ? 1.0F : 0.0F;
        pa->grad.at(r, c) += g * (probs->at(r, c) - ind);
      }
    }
  });
}

Variable mse(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  const std::size_t n = pred.value().numel();
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.value()[i] - target[i];
    acc += d * d;
  }
  Tensor out({1});
  out[0] = acc / static_cast<float>(n);
  auto tgt = std::make_shared<Tensor>(target);
  return make_result(std::move(out), {pred.node()}, [tgt, n](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    const float g = 2.0F * self.grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      pa->grad[i] += g * (pa->value[i] - (*tgt)[i]);
    }
  });
}

Variable msre(const Variable& pred, const Tensor& target, float eps) {
  if (!pred.value().same_shape(target)) {
    throw std::invalid_argument("msre: shape mismatch");
  }
  const std::size_t n = pred.value().numel();
  float acc = 0.0F;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(target[i]) < eps) continue;
    const float d = 1.0F - pred.value()[i] / target[i];
    acc += d * d;
    ++valid;
  }
  Tensor out({1});
  out[0] = valid == 0 ? 0.0F : acc / static_cast<float>(valid);
  auto tgt = std::make_shared<Tensor>(target);
  return make_result(std::move(out), {pred.node()}, [tgt, n, valid, eps](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa) || valid == 0) return;
    const float g = 2.0F * self.grad[0] / static_cast<float>(valid);
    for (std::size_t i = 0; i < n; ++i) {
      const float t = (*tgt)[i];
      if (std::abs(t) < eps) continue;
      pa->grad[i] += g * (pa->value[i] / t - 1.0F) / t;
    }
  });
}

Variable batchnorm(const Variable& x, const Variable& gamma, const Variable& beta,
                   Tensor& running_mean, Tensor& running_var, float momentum,
                   float eps, bool training) {
  if (x.value().rank() != 2) throw std::invalid_argument("batchnorm: rank != 2");
  const int n = x.value().rows();
  const int d = x.value().cols();
  if (gamma.value().dim(0) != d || beta.value().dim(0) != d) {
    throw std::invalid_argument("batchnorm: parameter width mismatch");
  }

  DANCE_PROFILE_SCOPE("tensor.batchnorm");
  auto mean = std::make_shared<Tensor>(std::vector<int>{d});
  auto inv_std = std::make_shared<Tensor>(std::vector<int>{d});
  // Columns are independent: each lane reduces whole columns and writes the
  // per-column statistics (including the running buffers) disjointly.
  if (training) {
    util::parallel_for(0, d, [&](long lo, long hi) {
      for (long c = lo; c < hi; ++c) {
        const int ci = static_cast<int>(c);
        float m = 0.0F;
        for (int r = 0; r < n; ++r) m += x.value().at(r, ci);
        m /= static_cast<float>(n);
        float v = 0.0F;
        for (int r = 0; r < n; ++r) {
          const float dd = x.value().at(r, ci) - m;
          v += dd * dd;
        }
        v /= static_cast<float>(n);
        (*mean)[static_cast<std::size_t>(c)] = m;
        (*inv_std)[static_cast<std::size_t>(c)] = 1.0F / std::sqrt(v + eps);
        running_mean[static_cast<std::size_t>(c)] =
            (1.0F - momentum) * running_mean[static_cast<std::size_t>(c)] + momentum * m;
        running_var[static_cast<std::size_t>(c)] =
            (1.0F - momentum) * running_var[static_cast<std::size_t>(c)] + momentum * v;
      }
    }, row_grain(n));
  } else {
    for (int c = 0; c < d; ++c) {
      (*mean)[static_cast<std::size_t>(c)] = running_mean[static_cast<std::size_t>(c)];
      (*inv_std)[static_cast<std::size_t>(c)] =
          1.0F / std::sqrt(running_var[static_cast<std::size_t>(c)] + eps);
    }
  }

  // Cache x_hat for the backward pass.
  auto x_hat = std::make_shared<Tensor>(std::vector<int>{n, d});
  Tensor out({n, d});
  util::parallel_for(0, n, [&](long lo, long hi) {
    for (long r = lo; r < hi; ++r) {
      const int ri = static_cast<int>(r);
      for (int c = 0; c < d; ++c) {
        const float xh = (x.value().at(ri, c) - (*mean)[static_cast<std::size_t>(c)]) *
                         (*inv_std)[static_cast<std::size_t>(c)];
        x_hat->at(ri, c) = xh;
        out.at(ri, c) = gamma.value()[static_cast<std::size_t>(c)] * xh +
                        beta.value()[static_cast<std::size_t>(c)];
      }
    }
  }, row_grain(d));

  return make_result(
      std::move(out), {x.node(), gamma.node(), beta.node()},
      [x_hat, inv_std, n, d, training](Node& self) {
        DANCE_PROFILE_SCOPE("tensor.batchnorm.bwd");
        auto& px = self.parents[0];
        auto& pg = self.parents[1];
        auto& pb = self.parents[2];
        util::parallel_for(0, d, [&](long lo, long hi) {
          for (long cc = lo; cc < hi; ++cc) {
            const int c = static_cast<int>(cc);
            float sum_dy = 0.0F;
            float sum_dy_xhat = 0.0F;
            for (int r = 0; r < n; ++r) {
              sum_dy += self.grad.at(r, c);
              sum_dy_xhat += self.grad.at(r, c) * x_hat->at(r, c);
            }
            if (wants(pg)) pg->grad[static_cast<std::size_t>(c)] += sum_dy_xhat;
            if (wants(pb)) pb->grad[static_cast<std::size_t>(c)] += sum_dy;
            if (wants(px)) {
              const float gamma_c = pg->value[static_cast<std::size_t>(c)];
              const float istd = (*inv_std)[static_cast<std::size_t>(c)];
              if (training) {
                const float inv_n = 1.0F / static_cast<float>(n);
                for (int r = 0; r < n; ++r) {
                  px->grad.at(r, c) +=
                      gamma_c * istd *
                      (self.grad.at(r, c) - inv_n * sum_dy -
                       inv_n * x_hat->at(r, c) * sum_dy_xhat);
                }
              } else {
                for (int r = 0; r < n; ++r) {
                  px->grad.at(r, c) += gamma_c * istd * self.grad.at(r, c);
                }
              }
            }
          }
        }, row_grain(n));
      });
}

Variable gumbel_softmax(const Variable& logits, float tau, bool hard,
                        util::Rng& rng) {
  if (logits.value().rank() != 2) {
    throw std::invalid_argument("gumbel_softmax: rank != 2");
  }
  if (tau <= 0.0F) throw std::invalid_argument("gumbel_softmax: tau must be > 0");
  DANCE_PROFILE_SCOPE("tensor.gumbel_softmax");
  const int n = logits.value().rows();
  const int d = logits.value().cols();
  // y_soft = softmax((logits + g) / tau)
  auto y_soft = std::make_shared<Tensor>(logits.value());
  for (std::size_t i = 0; i < y_soft->numel(); ++i) {
    (*y_soft)[i] = ((*y_soft)[i] + rng.gumbel()) / tau;
  }
  softmax_rows_inplace(*y_soft);

  Tensor out = *y_soft;
  if (hard) {
    for (int r = 0; r < n; ++r) {
      int arg = 0;
      for (int c = 1; c < d; ++c) {
        if (y_soft->at(r, c) > y_soft->at(r, arg)) arg = c;
      }
      for (int c = 0; c < d; ++c) out.at(r, c) = (c == arg) ? 1.0F : 0.0F;
    }
  }
  return make_result(std::move(out), {logits.node()},
                     [y_soft, tau, n, d](Node& self) {
    auto& pa = self.parents[0];
    if (!wants(pa)) return;
    // Straight-through: gradient of the soft sample regardless of `hard`.
    for (int r = 0; r < n; ++r) {
      float dot = 0.0F;
      for (int c = 0; c < d; ++c) dot += self.grad.at(r, c) * y_soft->at(r, c);
      for (int c = 0; c < d; ++c) {
        pa->grad.at(r, c) +=
            y_soft->at(r, c) * (self.grad.at(r, c) - dot) / tau;
      }
    }
  });
}

Variable hard_max_st(const Variable& a) {
  if (a.value().rank() != 2) throw std::invalid_argument("hard_max_st: rank != 2");
  const int n = a.value().rows();
  const int d = a.value().cols();
  Tensor out({n, d});
  for (int r = 0; r < n; ++r) {
    int arg = 0;
    for (int c = 1; c < d; ++c) {
      if (a.value().at(r, c) > a.value().at(r, arg)) arg = c;
    }
    out.at(r, arg) = 1.0F;
  }
  return make_result(std::move(out), {a.node()}, [](Node& self) {
    auto& pa = self.parents[0];
    if (wants(pa)) pa->grad.add_(self.grad);
  });
}

}  // namespace dance::tensor::ops
