#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace dance::tensor::gemm {

namespace {

/// Rows of A processed per tile before moving to the next kk block. Keeps a
/// kk-tile of B hot in L1/L2 while it is applied to a block of A rows.
constexpr long kRowBlock = 32;
/// kk-tile height: kKBlock rows of B (kKBlock * m floats) form the resident
/// tile. For the evaluator widths (m <= 256) this is at most 32 KiB.
constexpr int kKBlock = 32;

/// Pool grain matching the historical matmul grain: ~64k multiply-adds per
/// chunk so narrow products don't over-schedule.
long gemm_grain(int k, int m) { return std::max(1L, 65536L / std::max(1, k * m)); }

}  // namespace

bool all_finite(const float* p, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

void gemm_rows(const float* a, const float* b, float* c, long row_lo,
               long row_hi, int k, int m, bool b_finite) {
  for (long i0 = row_lo; i0 < row_hi; i0 += kRowBlock) {
    const long i1 = std::min(i0 + kRowBlock, row_hi);
    for (int k0 = 0; k0 < k; k0 += kKBlock) {
      const int k1 = std::min(k0 + kKBlock, k);
      for (long i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * m;
        for (int kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0F && b_finite) continue;
          const float* brow = b + static_cast<std::ptrdiff_t>(kk) * m;
          for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int n, int k, int m,
          bool b_finite) {
  util::parallel_for(0, n, [&](long lo, long hi) {
    gemm_rows(a, b, c, lo, hi, k, m, b_finite);
  }, gemm_grain(k, m));
}

void gemm(const float* a, const float* b, float* c, int n, int k, int m) {
  gemm(a, b, c, n, k, m,
       all_finite(b, static_cast<std::size_t>(k) * static_cast<std::size_t>(m)));
}

}  // namespace dance::tensor::gemm
