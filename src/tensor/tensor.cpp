#include "tensor/tensor.h"

#include <numeric>
#include <stdexcept>

namespace dance::tensor {

namespace {
std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::from(std::vector<int> shape, std::vector<float> values) {
  if (shape_numel(shape) != values.size()) {
    throw std::invalid_argument("Tensor::from: shape/value size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

int Tensor::rows() const {
  if (rank() != 2) throw std::logic_error("Tensor::rows: rank != 2");
  return shape_[0];
}

int Tensor::cols() const {
  if (rank() != 2) throw std::logic_error("Tensor::cols: rank != 2");
  return shape_[1];
}

float& Tensor::at(int r, int c) {
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols()) +
               static_cast<std::size_t>(c)];
}

float Tensor::at(int r, int c) const {
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols()) +
               static_cast<std::size_t>(c)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) {
  for (float& x : data_) x *= s;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

}  // namespace dance::tensor
