#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dance::tensor {

/// Dense row-major float tensor. The library only needs rank-1 and rank-2
/// tensors (vectors and [batch, features] matrices), so the shape is kept as
/// a small vector and all hot loops are written against raw contiguous data.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// i.i.d. N(mean, stddev) entries.
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float mean = 0.0F,
                      float stddev = 1.0F);
  /// Row-major values with an explicit shape.
  static Tensor from(std::vector<int> shape, std::vector<float> values);

  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }

  [[nodiscard]] int rows() const;  ///< rank-2 only
  [[nodiscard]] int cols() const;  ///< rank-2 only

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// rank-2 element access.
  float& at(int r, int c);
  [[nodiscard]] float at(int r, int c) const;

  void fill(float value);
  /// this += other (same shape).
  void add_(const Tensor& other);
  /// this *= s.
  void scale_(float s);

  [[nodiscard]] bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

  [[nodiscard]] std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace dance::tensor
