#pragma once

#include <vector>

#include "tensor/variable.h"
#include "util/rng.h"

namespace dance::tensor::ops {

/// Elementwise a + b (same shape).
Variable add(const Variable& a, const Variable& b);
/// [N,D] matrix plus a [D] row vector broadcast over rows (bias add).
Variable add_rowvec(const Variable& a, const Variable& bias);
/// Elementwise a - b (same shape).
Variable sub(const Variable& a, const Variable& b);
/// Elementwise a * b (same shape).
Variable mul(const Variable& a, const Variable& b);
/// a * s for scalar s.
Variable scale(const Variable& a, float s);
/// a * s where s is a trainable [1,1] (or single-element) variable broadcast
/// over all of a — used to gate candidate-op outputs by architecture
/// parameters in the supernet.
Variable scale_by(const Variable& a, const Variable& s);
/// a + c where c is a constant tensor (no gradient into c).
Variable add_const(const Variable& a, const Tensor& c);
/// [N,D] * [D] constant row vector broadcast over rows (per-column scaling;
/// no gradient into the row vector).
Variable mul_rowvec(const Variable& a, const Tensor& row);

/// [N,K] x [K,M] -> [N,M].
Variable matmul(const Variable& a, const Variable& b);

Variable relu(const Variable& a);
Variable sigmoid(const Variable& a);
/// Row-wise softmax of a rank-2 tensor.
Variable softmax_rows(const Variable& a);
/// Row-wise log-softmax of a rank-2 tensor (numerically stable).
Variable log_softmax_rows(const Variable& a);

/// Horizontal concatenation of rank-2 tensors with equal row counts.
Variable concat_cols(const std::vector<Variable>& parts);
/// Columns [from, to) of a rank-2 tensor.
Variable slice_cols(const Variable& a, int from, int to);

/// Scalar mean / sum over all elements.
Variable mean_all(const Variable& a);
Variable sum_all(const Variable& a);

/// Fused softmax + negative log-likelihood, averaged over the batch.
/// `labels[i]` is the class index of row i.
Variable cross_entropy(const Variable& logits, const std::vector<int>& labels);

/// Mean squared error against a constant target, averaged over all elements.
Variable mse(const Variable& pred, const Tensor& target);

/// Mean squared *relative* error (Eq. 2 of the paper):
///   mean_i (1 - pred_i / target_i)^2
/// Entries with |target| < eps are skipped (count excluded from the mean).
Variable msre(const Variable& pred, const Tensor& target, float eps = 1e-12F);

/// Fused batch normalization over the batch dimension of a [N,D] tensor.
/// In training mode uses batch statistics and updates the running buffers
/// in-place; in eval mode uses the running buffers.
Variable batchnorm(const Variable& x, const Variable& gamma, const Variable& beta,
                   Tensor& running_mean, Tensor& running_var, float momentum,
                   float eps, bool training);

/// Row-wise Gumbel-softmax (Jang et al., 2017). When `hard` is true the
/// forward value is the one-hot argmax and the backward pass uses the
/// straight-through softmax gradient — this is the discretization trick the
/// paper uses between the hardware generation and cost estimation networks.
Variable gumbel_softmax(const Variable& logits, float tau, bool hard,
                        util::Rng& rng);

/// Straight-through row-wise hard-max: forward emits one-hot argmax rows,
/// backward passes the upstream gradient through unchanged.
Variable hard_max_st(const Variable& a);

}  // namespace dance::tensor::ops
