#pragma once

#include <array>
#include <utility>

#include "nn/freeze.h"

namespace dance::evalnet {

/// Value snapshot of a whole evaluator checkpoint in inference form — both
/// trunks flattened to FrozenMlp schedules plus the non-network state the
/// deterministic forward depends on (head boundaries, output scale, feature
/// forwarding). Produced by Evaluator::freeze(); consumed by
/// infer::Plan::compile. Owning copies: recompiling after further training
/// or a checkpoint load requires a fresh freeze().
struct FrozenEvaluator {
  nn::FrozenMlp hwgen_trunk;  ///< arch encoding -> head logits
  nn::FrozenMlp cost_trunk;   ///< [arch | hw one-hot] -> raw metrics
  /// {begin, end} logit columns of the four hardware heads
  /// (PEX | PEY | RF | dataflow), HwGenNet::head_ranges order.
  std::array<std::pair<int, int>, 4> head_ranges{};
  /// Per-metric output scales the cost trunk's raw output is multiplied by
  /// (CostNet::output_scale, already narrowed to the float the op applies).
  std::array<float, 3> output_scale{1.0F, 1.0F, 1.0F};
  bool feature_forwarding = true;
  int arch_width = 0;  ///< evaluator input width
  int hw_width = 0;    ///< one-hot hardware encoding width
};

}  // namespace dance::evalnet
