#include "evalnet/cost_net.h"

#include <stdexcept>

#include "nn/serialize.h"

namespace dance::evalnet {

namespace ops = tensor::ops;

CostNet::CostNet(int arch_encoding_width, int hw_encoding_width, util::Rng& rng)
    : CostNet(arch_encoding_width, hw_encoding_width, rng, Options{}) {}

CostNet::CostNet(int arch_encoding_width, int hw_encoding_width, util::Rng& rng,
                 const Options& opts)
    : opts_(opts) {
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = arch_encoding_width +
               (opts.feature_forwarding ? hw_encoding_width : 0);
  cfg.hidden_dim = opts.hidden_dim;
  cfg.num_layers = opts.num_layers;
  cfg.out_dim = 3;
  cfg.batch_norm = true;  // paper: batch normalization every layer
  trunk_ = std::make_unique<nn::ResidualMlp>(cfg, rng);
}

tensor::Variable CostNet::forward(const tensor::Variable& arch_enc,
                                  const tensor::Variable& hw_enc) {
  tensor::Variable raw;
  if (opts_.feature_forwarding) {
    if (!hw_enc.defined()) {
      throw std::invalid_argument("CostNet: feature forwarding needs hw_enc");
    }
    raw = trunk_->forward(ops::concat_cols({arch_enc, hw_enc}));
  } else {
    raw = trunk_->forward(arch_enc);
  }
  tensor::Tensor row = tensor::Tensor::from(
      {3}, {static_cast<float>(scale_[0]), static_cast<float>(scale_[1]),
            static_cast<float>(scale_[2])});
  return ops::mul_rowvec(raw, row);
}

void CostNet::set_output_scale(const std::array<double, 3>& scale) {
  for (double s : scale) {
    if (s <= 0.0) throw std::invalid_argument("CostNet: scale must be positive");
  }
  scale_ = scale;
}

std::vector<tensor::Variable> CostNet::parameters() {
  return trunk_->parameters();
}

namespace {
std::vector<tensor::Tensor*> full_state(nn::ResidualMlp& trunk,
                                        std::vector<tensor::Variable>& params,
                                        tensor::Tensor& scale) {
  std::vector<tensor::Tensor*> state;
  for (auto& p : params) state.push_back(&p.value());
  for (auto* b : trunk.buffers()) state.push_back(b);
  state.push_back(&scale);
  return state;
}

std::vector<std::string> state_names(std::size_t num_params,
                                     std::size_t num_buffers) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < num_params; ++i) {
    names.push_back("trunk.param[" + std::to_string(i) + "]");
  }
  for (std::size_t i = 0; i < num_buffers; ++i) {
    names.push_back("trunk.bn_buffer[" + std::to_string(i) + "]");
  }
  names.push_back("output_scale");
  return names;
}
}  // namespace

void CostNet::save(const std::string& path) {
  auto params = trunk_->parameters();
  tensor::Tensor scale = tensor::Tensor::from(
      {3}, {static_cast<float>(scale_[0]), static_cast<float>(scale_[1]),
            static_cast<float>(scale_[2])});
  const auto state = full_state(*trunk_, params, scale);
  nn::save_tensors(path, {state.begin(), state.end()});
}

void CostNet::load(const std::string& path) {
  auto params = trunk_->parameters();
  tensor::Tensor scale = tensor::Tensor::zeros({3});
  const auto state = full_state(*trunk_, params, scale);
  nn::load_tensors(path, state,
                   state_names(params.size(), trunk_->buffers().size()));
  set_output_scale({static_cast<double>(scale[0]), static_cast<double>(scale[1]),
                    static_cast<double>(scale[2])});
}

void CostNet::set_training(bool training) { trunk_->set_training(training); }

}  // namespace dance::evalnet
