#include "evalnet/evaluator.h"

namespace dance::evalnet {

Evaluator::Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                     util::Rng& rng)
    : Evaluator(arch_encoding_width, space, rng, Options{}) {}

Evaluator::Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                     util::Rng& rng, const Options& opts)
    : opts_(opts) {
  hwgen_ = std::make_unique<HwGenNet>(arch_encoding_width, space, rng, opts.hwgen);
  cost_ = std::make_unique<CostNet>(arch_encoding_width, space.encoding_width(),
                                    rng, opts.cost);
}

Evaluator::Output Evaluator::forward(const tensor::Variable& arch_enc,
                                     util::Rng& rng) {
  Output out;
  out.hw_encoding = hwgen_->forward_encoded(arch_enc, opts_.gumbel_tau,
                                            opts_.gumbel_hard, rng);
  if (cost_->feature_forwarding()) {
    out.metrics = cost_->forward(arch_enc, out.hw_encoding);
  } else {
    out.metrics = cost_->forward(arch_enc, tensor::Variable{});
  }
  return out;
}

void Evaluator::set_frozen(bool frozen) {
  for (auto& p : hwgen_->parameters()) p.node()->requires_grad = !frozen;
  for (auto& p : cost_->parameters()) p.node()->requires_grad = !frozen;
}

void Evaluator::set_training(bool training) {
  hwgen_->set_training(training);
  cost_->set_training(training);
}

}  // namespace dance::evalnet
