#include "evalnet/evaluator.h"

#include <cstring>
#include <stdexcept>

namespace dance::evalnet {

Evaluator::Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                     util::Rng& rng)
    : Evaluator(arch_encoding_width, space, rng, Options{}) {}

Evaluator::Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                     util::Rng& rng, const Options& opts)
    : opts_(opts), arch_width_(arch_encoding_width) {
  hwgen_ = std::make_unique<HwGenNet>(arch_encoding_width, space, rng, opts.hwgen);
  cost_ = std::make_unique<CostNet>(arch_encoding_width, space.encoding_width(),
                                    rng, opts.cost);
}

Evaluator::Output Evaluator::forward(const tensor::Variable& arch_enc,
                                     util::Rng& rng) {
  Output out;
  out.hw_encoding = hwgen_->forward_encoded(arch_enc, opts_.gumbel_tau,
                                            opts_.gumbel_hard, rng);
  if (cost_->feature_forwarding()) {
    out.metrics = cost_->forward(arch_enc, out.hw_encoding);
  } else {
    out.metrics = cost_->forward(arch_enc, tensor::Variable{});
  }
  return out;
}

Evaluator::Output Evaluator::forward_deterministic(
    const tensor::Variable& arch_enc) {
  if (training_) {
    throw std::logic_error(
        "Evaluator::forward_deterministic: requires eval mode "
        "(set_training(false)); batch-norm batch statistics would make the "
        "output batch-composition dependent");
  }
  Output out;
  out.hw_encoding = hwgen_->forward_encoded_deterministic(arch_enc);
  if (cost_->feature_forwarding()) {
    out.metrics = cost_->forward(arch_enc, out.hw_encoding);
  } else {
    out.metrics = cost_->forward(arch_enc, tensor::Variable{});
  }
  return out;
}

tensor::Tensor Evaluator::stack_rows(
    const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    throw std::invalid_argument("Evaluator::stack_rows: empty batch");
  }
  const std::size_t width = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != width) {
      throw std::invalid_argument(
          "Evaluator::stack_rows: rows have unequal widths");
    }
  }
  // One [N, W] allocation sized up front; rows land via memcpy. Both the
  // batched autograd path and the fused plan path stack through here, so
  // batch layout (and its validation) has exactly one implementation.
  tensor::Tensor stacked(
      {static_cast<int>(rows.size()), static_cast<int>(width)});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(stacked.data() + i * width, rows[i].data(),
                width * sizeof(float));
  }
  return stacked;
}

Evaluator::Output Evaluator::forward_batch(
    const std::vector<std::vector<float>>& rows) {
  return forward_deterministic(tensor::Variable(stack_rows(rows)));
}

FrozenEvaluator Evaluator::freeze() {
  if (training_) {
    throw std::logic_error(
        "Evaluator::freeze: requires eval mode (set_training(false)); a "
        "frozen plan must reproduce the eval-mode batch-norm path");
  }
  FrozenEvaluator f;
  f.hwgen_trunk = hwgen_->freeze_trunk();
  f.cost_trunk = cost_->freeze_trunk();
  f.head_ranges = hwgen_->head_ranges();
  const auto& scale = cost_->output_scale();
  for (std::size_t i = 0; i < 3; ++i) {
    f.output_scale[i] = static_cast<float>(scale[i]);
  }
  f.feature_forwarding = cost_->feature_forwarding();
  f.arch_width = f.hwgen_trunk.in_dim;
  f.hw_width = f.hwgen_trunk.out_dim;
  return f;
}

void Evaluator::set_frozen(bool frozen) {
  // Idempotent: when every parameter already has the requested grad state
  // this is a pure read. That is what lets concurrent co-searches share one
  // pre-frozen evaluator (search/pareto.h sweeps): each DanceSearch::run
  // still calls set_frozen(true), but only the first — made before the
  // sweep fans out — writes.
  bool changed = false;
  for (auto& p : hwgen_->parameters()) changed |= p.node()->requires_grad == frozen;
  for (auto& p : cost_->parameters()) changed |= p.node()->requires_grad == frozen;
  if (!changed) return;
  for (auto& p : hwgen_->parameters()) p.node()->requires_grad = !frozen;
  for (auto& p : cost_->parameters()) p.node()->requires_grad = !frozen;
}

void Evaluator::set_training(bool training) {
  // Idempotent for the same reason as set_frozen. The guard checks the
  // nets' own flags (not just the mirror) so a trainer that toggled a net
  // directly cannot leave this facade out of sync.
  if (training_ == training && hwgen_->training() == training &&
      cost_->training() == training) {
    return;
  }
  training_ = training;
  hwgen_->set_training(training);
  cost_->set_training(training);
}

}  // namespace dance::evalnet
