#pragma once

#include <array>
#include <memory>
#include <string>

#include "hwgen/search_space.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace dance::evalnet {

/// The hardware generation network (§3.3): a five-layer residual perceptron
/// (width 128, ReLU) that models the exhaustive hardware search as a
/// classification problem. Given an architecture encoding it predicts the
/// optimal PE_X, PE_Y, RF size and dataflow as four classifier heads; the
/// heads pass through a Gumbel-softmax so the forwarded features are near
/// one-hot, matching the discrete inputs the cost estimation network was
/// trained on.
class HwGenNet {
 public:
  struct Options {
    int hidden_dim = 128;  ///< paper: layer width 128
    int num_layers = 5;    ///< paper: five-layer perceptron
  };

  HwGenNet(int arch_encoding_width, const hwgen::HwSearchSpace& space,
           util::Rng& rng);
  HwGenNet(int arch_encoding_width, const hwgen::HwSearchSpace& space,
           util::Rng& rng, const Options& opts);

  /// Raw head logits, concatenated in the search-space encoding order
  /// (PEX | PEY | RF | dataflow): [N, encoding_width].
  [[nodiscard]] tensor::Variable logits(const tensor::Variable& arch_enc);

  /// Per-head boundaries within the logits/encoding: {begin, end} pairs for
  /// head 0..3 = PEX, PEY, RF, dataflow.
  [[nodiscard]] std::array<std::pair<int, int>, 4> head_ranges() const;

  /// Group-wise Gumbel-softmax of the logits: a near-one-hot (or exactly
  /// one-hot when `hard`) predicted hardware configuration encoding.
  [[nodiscard]] tensor::Variable forward_encoded(const tensor::Variable& arch_enc,
                                                 float tau, bool hard,
                                                 util::Rng& rng);

  /// Tau-frozen deterministic variant of `forward_encoded`: per-head hard
  /// argmax of the logits (straight-through), no Gumbel noise, no RNG. The
  /// encoding agrees with `predict` row by row; this is the serving path
  /// (dance::serve), where identical inputs must produce identical outputs
  /// regardless of RNG stream order.
  [[nodiscard]] tensor::Variable forward_encoded_deterministic(
      const tensor::Variable& arch_enc);

  /// Argmax-decode a predicted configuration for each row of `arch_enc`.
  [[nodiscard]] std::vector<accel::AcceleratorConfig> predict(
      const tensor::Variable& arch_enc);

  [[nodiscard]] std::vector<tensor::Variable> parameters();
  void set_training(bool training);
  [[nodiscard]] bool training() const { return trunk_->training(); }
  [[nodiscard]] const hwgen::HwSearchSpace& space() const { return space_; }

  /// Frozen snapshot of the trunk (nn/freeze.h) for the inference compiler.
  [[nodiscard]] nn::FrozenMlp freeze_trunk() const { return trunk_->freeze(); }

  /// Full-state checkpointing (parameters; the trunk carries no batch norm).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  const hwgen::HwSearchSpace& space_;
  std::unique_ptr<nn::ResidualMlp> trunk_;
};

}  // namespace dance::evalnet
