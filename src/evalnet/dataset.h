#pragma once

#include <array>
#include <vector>

#include "arch/cost_provider.h"
#include "util/rng.h"

namespace dance::evalnet {

/// One ground-truth sample for evaluator training: a random architecture
/// from A, the optimal hardware configuration found by exhaustive search
/// over H, and the cost metrics of running the network on that optimum.
struct EvalSample {
  std::vector<float> arch_enc;          ///< one-hot architecture encoding
  std::array<int, 4> hw_labels{};       ///< PEX / PEY / RF / dataflow indices
  std::vector<float> hw_enc;            ///< one-hot config encoding
  std::array<double, 3> metrics{};      ///< latency_ms, energy_mj, area_mm2
};

struct EvaluatorDataset {
  std::vector<EvalSample> samples;
  int arch_encoding_width = 0;
  int hw_encoding_width = 0;
};

/// Generate `count` ground-truth samples: sample random architectures and run
/// the exact exhaustive hardware generation tool on each. This is the C++
/// counterpart of the paper's Timeloop+Accelergy ground-truth corpus.
[[nodiscard]] EvaluatorDataset generate_evaluator_dataset(
    const arch::CostProvider& table, const accel::HwCostFn& cost_fn, int count,
    util::Rng& rng);

/// Split a dataset into train/validation parts (no shuffling; samples are
/// i.i.d. by construction).
[[nodiscard]] std::pair<EvaluatorDataset, EvaluatorDataset> split_dataset(
    const EvaluatorDataset& ds, double train_fraction);

}  // namespace dance::evalnet
