#pragma once

#include <memory>

#include "evalnet/cost_net.h"
#include "evalnet/frozen.h"
#include "evalnet/hwgen_net.h"

namespace dance::evalnet {

/// The full differentiable evaluator of Fig. 4: hardware generation network
/// -> Gumbel-softmax -> (feature forwarding) -> cost estimation network.
/// Once trained it is frozen and spliced into the NAS loss so that hardware
/// cost gradients flow back into the architecture parameters.
class Evaluator {
 public:
  struct Options {
    HwGenNet::Options hwgen;
    CostNet::Options cost;
    float gumbel_tau = 1.0F;
    bool gumbel_hard = false;  ///< soft during search keeps gradients smooth
  };

  Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
            util::Rng& rng);
  Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
            util::Rng& rng, const Options& opts);

  struct Output {
    tensor::Variable hw_encoding;  ///< [N, hw_width] near-one-hot config
    tensor::Variable metrics;      ///< [N, 3] latency_ms, energy_mj, area_mm2
  };

  /// Differentiable forward pass from an architecture encoding (which may be
  /// a soft distribution during search) to predicted cost metrics.
  [[nodiscard]] Output forward(const tensor::Variable& arch_enc, util::Rng& rng);

  /// Deterministic inference contract (the dance::serve path)
  /// ---------------------------------------------------------
  /// `forward` draws Gumbel noise from the caller's RNG, so the result of a
  /// query depends on the RNG stream position — two identical requests in
  /// different orders produce different bits, which makes answers
  /// uncacheable. `forward_deterministic` replaces the sampling with the
  /// tau-frozen argmax path: each hardware head emits the hard one-hot of
  /// its logits (straight-through), no noise, no RNG. The output is then a
  /// pure function of (`arch_enc`, parameters):
  ///   * identical encodings map to bit-identical outputs, in any order,
  ///   * rows are independent, so stacking encodings into one [N, W] batch
  ///     (`forward_batch`) is bit-identical to N single-row calls.
  /// Both guarantees require eval mode (`set_training(false)`): in training
  /// mode the cost net's batch norm uses batch statistics, which depend on
  /// batch composition (and mutate the running buffers). Both methods throw
  /// std::logic_error when the evaluator is still in training mode.
  [[nodiscard]] Output forward_deterministic(const tensor::Variable& arch_enc);

  /// Batched deterministic inference: stacks `rows` (each one arch-encoding
  /// row of equal width) into a single [N, W] forward via stack_rows(). This
  /// is the micro-batching entry point the serve layer amortizes queries
  /// through. A single-row batch is legal and bit-identical to
  /// forward_deterministic on that row wrapped as a [1, W] tensor — the
  /// degenerate case a drained micro-batcher regularly produces (property
  /// tested in tests/test_infer.cpp).
  [[nodiscard]] Output forward_batch(
      const std::vector<std::vector<float>>& rows);

  /// Stacks equal-width rows into one [N, W] tensor with a single allocation
  /// sized up front (no per-row growth). Shared by forward_batch and the
  /// dance::infer fused path so both validate and lay out batches
  /// identically. Throws std::invalid_argument on an empty batch or unequal
  /// row widths.
  [[nodiscard]] static tensor::Tensor stack_rows(
      const std::vector<std::vector<float>>& rows);

  /// Inference-form snapshot of the full checkpoint (evalnet/frozen.h): the
  /// entry point of the dance::infer compile path —
  /// `infer::Plan::compile(evaluator.freeze())`. Requires eval mode, same as
  /// forward_deterministic (throws std::logic_error in training mode): a
  /// frozen snapshot of training-mode batch norm would bake in statistics
  /// the autograd path would not reproduce.
  [[nodiscard]] FrozenEvaluator freeze();

  [[nodiscard]] HwGenNet& hwgen_net() { return *hwgen_; }
  [[nodiscard]] CostNet& cost_net() { return *cost_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  /// Width of the architecture encoding this evaluator was built for (the
  /// registry records it in the MANIFEST so a generation can be
  /// reconstructed without the original arch space at hand).
  [[nodiscard]] int arch_encoding_width() const { return arch_width_; }

  /// Freeze/unfreeze all parameters (the evaluator is frozen during search).
  /// Both setters are idempotent — calling them with the state the evaluator
  /// is already in performs no write. Combined with the facts that `forward`
  /// in eval mode reads only (batch norm uses its running buffers) and that
  /// backward never touches nodes with requires_grad unset, this makes a
  /// frozen, eval-mode evaluator safe to share across concurrent searches
  /// (the search/pareto.h sweep): prepare it once with set_training(false) +
  /// set_frozen(true) before fanning out, and every lane's repeated calls
  /// degrade to reads.
  void set_frozen(bool frozen);
  void set_training(bool training);
  [[nodiscard]] bool training() const { return training_; }

 private:
  Options opts_;
  int arch_width_ = 0;
  std::unique_ptr<HwGenNet> hwgen_;
  std::unique_ptr<CostNet> cost_;
  bool training_ = true;
};

}  // namespace dance::evalnet
