#pragma once

#include <memory>

#include "evalnet/cost_net.h"
#include "evalnet/hwgen_net.h"

namespace dance::evalnet {

/// The full differentiable evaluator of Fig. 4: hardware generation network
/// -> Gumbel-softmax -> (feature forwarding) -> cost estimation network.
/// Once trained it is frozen and spliced into the NAS loss so that hardware
/// cost gradients flow back into the architecture parameters.
class Evaluator {
 public:
  struct Options {
    HwGenNet::Options hwgen;
    CostNet::Options cost;
    float gumbel_tau = 1.0F;
    bool gumbel_hard = false;  ///< soft during search keeps gradients smooth
  };

  Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
            util::Rng& rng);
  Evaluator(int arch_encoding_width, const hwgen::HwSearchSpace& space,
            util::Rng& rng, const Options& opts);

  struct Output {
    tensor::Variable hw_encoding;  ///< [N, hw_width] near-one-hot config
    tensor::Variable metrics;      ///< [N, 3] latency_ms, energy_mj, area_mm2
  };

  /// Differentiable forward pass from an architecture encoding (which may be
  /// a soft distribution during search) to predicted cost metrics.
  [[nodiscard]] Output forward(const tensor::Variable& arch_enc, util::Rng& rng);

  [[nodiscard]] HwGenNet& hwgen_net() { return *hwgen_; }
  [[nodiscard]] CostNet& cost_net() { return *cost_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Freeze/unfreeze all parameters (the evaluator is frozen during search).
  void set_frozen(bool frozen);
  void set_training(bool training);

 private:
  Options opts_;
  std::unique_ptr<HwGenNet> hwgen_;
  std::unique_ptr<CostNet> cost_;
};

}  // namespace dance::evalnet
