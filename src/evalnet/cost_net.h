#pragma once

#include <array>
#include <memory>
#include <string>

#include "nn/mlp.h"
#include "util/rng.h"

namespace dance::evalnet {

/// The cost estimation network (§3.3): a five-layer residual regression
/// network (width 256, ReLU, batch norm on every layer) that maps an
/// architecture encoding — optionally concatenated with a (near-)one-hot
/// hardware configuration via feature forwarding — to the three cost metrics
/// (latency, energy, area) of the *optimal* accelerator for that network.
/// Trained with the MSRE loss of Eq. 2.
class CostNet {
 public:
  struct Options {
    int hidden_dim = 256;  ///< paper: layer width 256
    int num_layers = 5;
    bool feature_forwarding = true;  ///< append the HW config encoding
  };

  /// `hw_encoding_width` is the width of the forwarded configuration
  /// encoding (ignored when feature forwarding is off).
  CostNet(int arch_encoding_width, int hw_encoding_width, util::Rng& rng);
  CostNet(int arch_encoding_width, int hw_encoding_width, util::Rng& rng,
          const Options& opts);

  /// Predicted [latency_ms, energy_mj, area_mm2]: [N, 3].
  /// `hw_enc` must be defined iff feature forwarding is enabled.
  [[nodiscard]] tensor::Variable forward(const tensor::Variable& arch_enc,
                                         const tensor::Variable& hw_enc);

  [[nodiscard]] bool feature_forwarding() const { return opts_.feature_forwarding; }
  [[nodiscard]] std::vector<tensor::Variable> parameters();
  void set_training(bool training);
  [[nodiscard]] bool training() const { return trunk_->training(); }

  /// Frozen snapshot of the trunk (nn/freeze.h) for the inference compiler.
  /// Note the output scale is NOT part of the trunk; export it separately
  /// via output_scale().
  [[nodiscard]] nn::FrozenMlp freeze_trunk() const { return trunk_->freeze(); }

  /// Per-metric output scales (typically the training-set means). The trunk
  /// regresses metrics in units of these scales and the forward pass
  /// multiplies them back, so all three MSRE columns are equally
  /// conditioned regardless of their physical magnitudes. MSRE itself is
  /// invariant under this joint rescaling of prediction and target.
  void set_output_scale(const std::array<double, 3>& scale);
  [[nodiscard]] const std::array<double, 3>& output_scale() const {
    return scale_;
  }

  /// Full-state checkpointing: trunk parameters, batch-norm running
  /// statistics and the output scale.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  Options opts_;
  std::unique_ptr<nn::ResidualMlp> trunk_;
  std::array<double, 3> scale_{1.0, 1.0, 1.0};
};

}  // namespace dance::evalnet
