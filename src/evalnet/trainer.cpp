#include "evalnet/trainer.h"

#include <cstdio>
#include <stdexcept>

#include "nn/optim.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/profiler.h"
#include "util/stats.h"

namespace dance::evalnet {

namespace ops = tensor::ops;
using tensor::Tensor;
using tensor::Variable;

namespace {

/// Materialize a batch of architecture encodings as a [B, W] tensor.
Tensor batch_arch(const EvaluatorDataset& ds, const std::vector<int>& idx) {
  const int w = ds.arch_encoding_width;
  Tensor t({static_cast<int>(idx.size()), w});
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto& enc = ds.samples[static_cast<std::size_t>(idx[r])].arch_enc;
    for (int c = 0; c < w; ++c) t.at(static_cast<int>(r), c) = enc[static_cast<std::size_t>(c)];
  }
  return t;
}

Tensor batch_hw(const EvaluatorDataset& ds, const std::vector<int>& idx) {
  const int w = ds.hw_encoding_width;
  Tensor t({static_cast<int>(idx.size()), w});
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto& enc = ds.samples[static_cast<std::size_t>(idx[r])].hw_enc;
    for (int c = 0; c < w; ++c) t.at(static_cast<int>(r), c) = enc[static_cast<std::size_t>(c)];
  }
  return t;
}

Tensor batch_metrics(const EvaluatorDataset& ds, const std::vector<int>& idx) {
  Tensor t({static_cast<int>(idx.size()), 3});
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto& m = ds.samples[static_cast<std::size_t>(idx[r])].metrics;
    for (int c = 0; c < 3; ++c) {
      t.at(static_cast<int>(r), c) = static_cast<float>(m[static_cast<std::size_t>(c)]);
    }
  }
  return t;
}

std::vector<int> head_labels(const EvaluatorDataset& ds,
                             const std::vector<int>& idx, int head) {
  std::vector<int> labels(idx.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    labels[r] = ds.samples[static_cast<std::size_t>(idx[r])]
                    .hw_labels[static_cast<std::size_t>(head)];
  }
  return labels;
}

std::vector<int> all_indices(const EvaluatorDataset& ds) {
  std::vector<int> idx(ds.samples.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  return idx;
}

void check_nonempty(const EvaluatorDataset& ds, const char* what) {
  if (ds.samples.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty dataset");
  }
}

}  // namespace

HwGenEval evaluate_hwgen_net(HwGenNet& net, const EvaluatorDataset& val) {
  check_nonempty(val, "evaluate_hwgen_net");
  DANCE_PROFILE_SCOPE("evalnet.hwgen.eval");
  net.set_training(false);
  const auto idx = all_indices(val);
  const Variable x(batch_arch(val, idx));
  const Variable lg = net.logits(x);
  const auto ranges = net.head_ranges();
  HwGenEval eval;
  for (int head = 0; head < 4; ++head) {
    const auto [begin, end] = ranges[static_cast<std::size_t>(head)];
    std::vector<int> pred(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
      int best = begin;
      for (int c = begin + 1; c < end; ++c) {
        if (lg.value().at(static_cast<int>(r), c) >
            lg.value().at(static_cast<int>(r), best)) {
          best = c;
        }
      }
      pred[r] = best - begin;
    }
    const auto truth = head_labels(val, idx, head);
    eval.head_accuracy_pct[static_cast<std::size_t>(head)] =
        util::classification_accuracy_pct(pred, truth);
  }
  return eval;
}

HwGenEval train_hwgen_net(HwGenNet& net, const EvaluatorDataset& train,
                          const EvaluatorDataset& val, const TrainOptions& opts) {
  check_nonempty(train, "train_hwgen_net");
  util::Rng rng(opts.seed);
  // Paper: SGD, batch 128, lr 0.001 decayed 0.1x every 50 epochs. The decay
  // interval is rescaled to the configured epoch budget.
  nn::Sgd::Options sgd_opts;
  sgd_opts.lr = opts.lr;
  sgd_opts.momentum = 0.9F;
  nn::Sgd optimizer(net.parameters(), sgd_opts);
  const nn::StepSchedule schedule(opts.lr, 0.1F, std::max(1, opts.epochs / 4));

  obs::Gauge& loss_gauge = obs::Registry::global().gauge("evalnet.hwgen.loss");
  const int n = static_cast<int>(train.samples.size());
  net.set_training(true);
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("evalnet.hwgen.epoch");
    optimizer.set_lr(schedule.lr(epoch));
    const auto perm = rng.permutation(n);
    double loss_sum = 0.0;
    int steps = 0;
    for (int start = 0; start < n; start += opts.batch_size) {
      DANCE_PROFILE_SCOPE("evalnet.hwgen.step");
      const int stop = std::min(n, start + opts.batch_size);
      const std::vector<int> idx(perm.begin() + start, perm.begin() + stop);
      const Variable x(batch_arch(train, idx));
      const Variable lg = net.logits(x);
      const auto ranges = net.head_ranges();
      Variable loss;
      for (int head = 0; head < 4; ++head) {
        const auto [begin, end] = ranges[static_cast<std::size_t>(head)];
        const Variable head_loss = ops::cross_entropy(
            ops::slice_cols(lg, begin, end), head_labels(train, idx, head));
        loss = head == 0 ? head_loss : ops::add(loss, head_loss);
      }
      loss_sum += loss.value()[0];
      ++steps;
      optimizer.zero_grad();
      loss.backward();
      optimizer.step();
    }
    if (steps > 0) loss_gauge.set(loss_sum / steps);
    if (opts.verbose && (epoch + 1) % 10 == 0) {
      const auto e = evaluate_hwgen_net(net, val);
      std::printf("[hwgen] epoch %3d acc PEX=%.1f PEY=%.1f RF=%.1f DF=%.1f\n",
                  epoch + 1, e.head_accuracy_pct[0], e.head_accuracy_pct[1],
                  e.head_accuracy_pct[2], e.head_accuracy_pct[3]);
      net.set_training(true);
    }
  }
  return evaluate_hwgen_net(net, val);
}

CostEval evaluate_cost_net(CostNet& net, const EvaluatorDataset& val) {
  check_nonempty(val, "evaluate_cost_net");
  DANCE_PROFILE_SCOPE("evalnet.cost.eval");
  net.set_training(false);
  const auto idx = all_indices(val);
  const Variable x(batch_arch(val, idx));
  const Variable hw = net.feature_forwarding() ? Variable(batch_hw(val, idx))
                                               : Variable{};
  const Variable pred = net.forward(x, hw);
  CostEval eval;
  for (int metric = 0; metric < 3; ++metric) {
    std::vector<double> p(idx.size());
    std::vector<double> t(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
      p[r] = pred.value().at(static_cast<int>(r), metric);
      t[r] = val.samples[static_cast<std::size_t>(idx[r])]
                 .metrics[static_cast<std::size_t>(metric)];
    }
    eval.metric_accuracy_pct[static_cast<std::size_t>(metric)] =
        util::regression_accuracy_pct(p, t);
  }
  return eval;
}

CostEval train_cost_net(CostNet& net, const EvaluatorDataset& train,
                        const EvaluatorDataset& val, const TrainOptions& opts) {
  check_nonempty(train, "train_cost_net");
  util::Rng rng(opts.seed);
  // Condition the regression: per-metric output scale = training-set mean.
  {
    std::array<double, 3> scale{0.0, 0.0, 0.0};
    for (const auto& s : train.samples) {
      for (int m = 0; m < 3; ++m) scale[static_cast<std::size_t>(m)] += s.metrics[static_cast<std::size_t>(m)];
    }
    for (auto& v : scale) {
      v = std::max(1e-9, v / static_cast<double>(train.samples.size()));
    }
    net.set_output_scale(scale);
  }
  // Paper: Adam, lr 1e-4, batch 256.
  nn::Adam::Options adam_opts;
  adam_opts.lr = opts.lr;
  adam_opts.weight_decay = 1e-5F;
  nn::Adam optimizer(net.parameters(), adam_opts);
  // Cosine decay to a small floor stabilizes the tail of the fit.
  const nn::CosineSchedule schedule(opts.lr, opts.epochs + opts.epochs / 4 + 1);

  obs::Gauge& loss_gauge = obs::Registry::global().gauge("evalnet.cost.loss");
  const int n = static_cast<int>(train.samples.size());
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("evalnet.cost.epoch");
    optimizer.set_lr(schedule.lr(epoch));
    net.set_training(true);
    const auto perm = rng.permutation(n);
    double loss_sum = 0.0;
    int steps = 0;
    for (int start = 0; start < n; start += opts.batch_size) {
      DANCE_PROFILE_SCOPE("evalnet.cost.step");
      const int stop = std::min(n, start + opts.batch_size);
      if (stop - start < 2) continue;  // batch norm needs >= 2 rows
      const std::vector<int> idx(perm.begin() + start, perm.begin() + stop);
      const Variable x(batch_arch(train, idx));
      const Variable hw = net.feature_forwarding() ? Variable(batch_hw(train, idx))
                                                   : Variable{};
      const Variable pred = net.forward(x, hw);
      const Variable loss = ops::msre(pred, batch_metrics(train, idx));
      loss_sum += loss.value()[0];
      ++steps;
      optimizer.zero_grad();
      loss.backward();
      optimizer.step();
    }
    if (steps > 0) loss_gauge.set(loss_sum / steps);
    if (opts.verbose && (epoch + 1) % 10 == 0) {
      const auto e = evaluate_cost_net(net, val);
      std::printf("[cost] epoch %3d acc lat=%.1f en=%.1f area=%.1f\n", epoch + 1,
                  e.metric_accuracy_pct[0], e.metric_accuracy_pct[1],
                  e.metric_accuracy_pct[2]);
    }
  }
  return evaluate_cost_net(net, val);
}

CostEval evaluate_evaluator(Evaluator& evaluator, const EvaluatorDataset& val,
                            util::Rng& rng) {
  check_nonempty(val, "evaluate_evaluator");
  evaluator.set_training(false);
  const auto idx = all_indices(val);
  const Variable x(batch_arch(val, idx));
  const Evaluator::Output out = evaluator.forward(x, rng);
  CostEval eval;
  for (int metric = 0; metric < 3; ++metric) {
    std::vector<double> p(idx.size());
    std::vector<double> t(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
      p[r] = out.metrics.value().at(static_cast<int>(r), metric);
      t[r] = val.samples[static_cast<std::size_t>(idx[r])]
                 .metrics[static_cast<std::size_t>(metric)];
    }
    eval.metric_accuracy_pct[static_cast<std::size_t>(metric)] =
        util::regression_accuracy_pct(p, t);
  }
  return eval;
}

}  // namespace dance::evalnet
