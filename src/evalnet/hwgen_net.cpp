#include "evalnet/hwgen_net.h"

#include "nn/serialize.h"

namespace dance::evalnet {

namespace ops = tensor::ops;

HwGenNet::HwGenNet(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                   util::Rng& rng)
    : HwGenNet(arch_encoding_width, space, rng, Options{}) {}

HwGenNet::HwGenNet(int arch_encoding_width, const hwgen::HwSearchSpace& space,
                   util::Rng& rng, const Options& opts)
    : space_(space) {
  nn::ResidualMlpConfig cfg;
  cfg.in_dim = arch_encoding_width;
  cfg.hidden_dim = opts.hidden_dim;
  cfg.num_layers = opts.num_layers;
  cfg.out_dim = space.encoding_width();
  cfg.batch_norm = false;
  trunk_ = std::make_unique<nn::ResidualMlp>(cfg, rng);
}

tensor::Variable HwGenNet::logits(const tensor::Variable& arch_enc) {
  return trunk_->forward(arch_enc);
}

std::array<std::pair<int, int>, 4> HwGenNet::head_ranges() const {
  const int pe = space_.num_pe_choices();
  const int rf = space_.num_rf_choices();
  return {std::pair{0, pe}, std::pair{pe, 2 * pe}, std::pair{2 * pe, 2 * pe + rf},
          std::pair{2 * pe + rf, 2 * pe + rf + 3}};
}

tensor::Variable HwGenNet::forward_encoded(const tensor::Variable& arch_enc,
                                           float tau, bool hard,
                                           util::Rng& rng) {
  const tensor::Variable lg = logits(arch_enc);
  std::vector<tensor::Variable> heads;
  heads.reserve(4);
  for (const auto& [begin, end] : head_ranges()) {
    heads.push_back(
        ops::gumbel_softmax(ops::slice_cols(lg, begin, end), tau, hard, rng));
  }
  return ops::concat_cols(heads);
}

tensor::Variable HwGenNet::forward_encoded_deterministic(
    const tensor::Variable& arch_enc) {
  const tensor::Variable lg = logits(arch_enc);
  std::vector<tensor::Variable> heads;
  heads.reserve(4);
  for (const auto& [begin, end] : head_ranges()) {
    heads.push_back(ops::hard_max_st(ops::slice_cols(lg, begin, end)));
  }
  return ops::concat_cols(heads);
}

std::vector<accel::AcceleratorConfig> HwGenNet::predict(
    const tensor::Variable& arch_enc) {
  const tensor::Variable lg = logits(arch_enc);
  const auto ranges = head_ranges();
  const int n = lg.value().rows();
  std::vector<accel::AcceleratorConfig> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    std::array<int, 4> arg{};
    for (int h = 0; h < 4; ++h) {
      const auto [begin, end] = ranges[static_cast<std::size_t>(h)];
      int best = begin;
      for (int c = begin + 1; c < end; ++c) {
        if (lg.value().at(r, c) > lg.value().at(r, best)) best = c;
      }
      arg[static_cast<std::size_t>(h)] = best - begin;
    }
    out.push_back(accel::AcceleratorConfig{
        space_.pe_value(arg[0]), space_.pe_value(arg[1]), space_.rf_value(arg[2]),
        space_.dataflow_value(arg[3])});
  }
  return out;
}

std::vector<tensor::Variable> HwGenNet::parameters() {
  return trunk_->parameters();
}

void HwGenNet::set_training(bool training) { trunk_->set_training(training); }

void HwGenNet::save(const std::string& path) {
  auto params = trunk_->parameters();
  nn::save_parameters(path, params);
}

void HwGenNet::load(const std::string& path) {
  auto params = trunk_->parameters();
  std::vector<std::string> names;
  for (std::size_t i = 0; i < params.size(); ++i) {
    names.push_back("trunk.param[" + std::to_string(i) + "]");
  }
  nn::load_parameters(path, params, names);
}

}  // namespace dance::evalnet
