#include "evalnet/dataset.h"

#include <stdexcept>

#include "runtime/profiler.h"
#include "runtime/thread_pool.h"

namespace dance::evalnet {

EvaluatorDataset generate_evaluator_dataset(const arch::CostProvider& table,
                                            const accel::HwCostFn& cost_fn,
                                            int count, util::Rng& rng) {
  if (count <= 0) throw std::invalid_argument("generate_evaluator_dataset: count");
  DANCE_PROFILE_SCOPE("evalnet.dataset.generate");
  const auto& arch_space = table.arch_space();
  const auto& hw_space = table.hw_space();

  // Draw all architectures up-front on the caller's RNG so the sample stream
  // is independent of the thread count; the exhaustive hardware generation
  // per sample (the expensive part) then fans out over the pool, each lane
  // writing its own pre-sized slot.
  std::vector<arch::Architecture> archs;
  archs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) archs.push_back(arch_space.random(rng));

  EvaluatorDataset ds;
  ds.arch_encoding_width = arch_space.encoding_width();
  ds.hw_encoding_width = hw_space.encoding_width();
  ds.samples.resize(static_cast<std::size_t>(count));
  runtime::global_pool().parallel_for(0, count, /*grain=*/1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const arch::Architecture& a = archs[si];
      const hwgen::HwSearchResult best = table.optimal(a, cost_fn);
      EvalSample& s = ds.samples[si];
      s.arch_enc = arch_space.encode(a);
      s.hw_labels = {hw_space.pe_index(best.config.pe_x),
                     hw_space.pe_index(best.config.pe_y),
                     hw_space.rf_index(best.config.rf_size),
                     hw_space.dataflow_index(best.config.dataflow)};
      s.hw_enc = hw_space.encode(best.config);
      s.metrics = {best.metrics.latency_ms, best.metrics.energy_mj,
                   best.metrics.area_mm2};
    }
  });
  return ds;
}

std::pair<EvaluatorDataset, EvaluatorDataset> split_dataset(
    const EvaluatorDataset& ds, double train_fraction) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: fraction out of (0,1)");
  }
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(ds.samples.size()));
  EvaluatorDataset train;
  EvaluatorDataset val;
  train.arch_encoding_width = val.arch_encoding_width = ds.arch_encoding_width;
  train.hw_encoding_width = val.hw_encoding_width = ds.hw_encoding_width;
  train.samples.assign(ds.samples.begin(),
                       ds.samples.begin() + static_cast<std::ptrdiff_t>(n_train));
  val.samples.assign(ds.samples.begin() + static_cast<std::ptrdiff_t>(n_train),
                     ds.samples.end());
  return {std::move(train), std::move(val)};
}

}  // namespace dance::evalnet
