#pragma once

#include <array>

#include "evalnet/dataset.h"
#include "evalnet/evaluator.h"

namespace dance::evalnet {

/// Shared knobs for evaluator-component training. Defaults are scaled-down
/// versions of the paper's settings (§4.2) so benches finish in minutes; the
/// paper-scale values are noted inline.
struct TrainOptions {
  int epochs = 40;        ///< paper: 200
  int batch_size = 128;   ///< paper: 128 (hwgen) / 256 (cost)
  float lr = 1e-3F;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Validation results of the hardware generation network: per-head
/// classification accuracy (%) in the order PEX, PEY, RF, dataflow
/// (Table 1, "Hardware Generation" block).
struct HwGenEval {
  std::array<double, 4> head_accuracy_pct{};
};

/// Validation results of a cost regression: per-metric accuracy
/// 100*(1 - mean relative error) for latency, energy, area
/// (Table 1, "Cost Estimation" / "Overall Evaluator" blocks).
struct CostEval {
  std::array<double, 3> metric_accuracy_pct{};
};

/// Train the hardware generation network with per-head cross entropy
/// (Loss_CE_HW), SGD with step decay as in the paper.
HwGenEval train_hwgen_net(HwGenNet& net, const EvaluatorDataset& train,
                          const EvaluatorDataset& val, const TrainOptions& opts);

/// Evaluate a trained hardware generation network on a dataset.
[[nodiscard]] HwGenEval evaluate_hwgen_net(HwGenNet& net,
                                           const EvaluatorDataset& val);

/// Train the cost estimation network with the MSRE loss (Eq. 2) and Adam.
/// When the net uses feature forwarding the *ground-truth* one-hot hardware
/// configuration is forwarded, exactly as the paper trains it.
CostEval train_cost_net(CostNet& net, const EvaluatorDataset& train,
                        const EvaluatorDataset& val, const TrainOptions& opts);

/// Evaluate a trained cost net against ground truth (with ground-truth
/// feature forwarding when enabled).
[[nodiscard]] CostEval evaluate_cost_net(CostNet& net,
                                         const EvaluatorDataset& val);

/// End-to-end evaluator accuracy: architecture encoding -> HwGenNet ->
/// Gumbel-softmax -> CostNet, compared to ground-truth metrics (Table 1,
/// "Overall Evaluator").
[[nodiscard]] CostEval evaluate_evaluator(Evaluator& evaluator,
                                          const EvaluatorDataset& val,
                                          util::Rng& rng);

}  // namespace dance::evalnet
