#include "search/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <set>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/span.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/parallel.h"

namespace dance::search {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Strict (latency, energy, area) dominance between raw metric triples —
/// the hardware-level check verify_front runs per architecture.
bool dominates_metrics(const accel::CostMetrics& a, const accel::CostMetrics& b) {
  const bool le = a.latency_ms <= b.latency_ms && a.energy_mj <= b.energy_mj &&
                  a.area_mm2 <= b.area_mm2;
  const bool lt = a.latency_ms < b.latency_ms || a.energy_mj < b.energy_mj ||
                  a.area_mm2 < b.area_mm2;
  return le && lt;
}

}  // namespace

std::vector<Scalarization> lambda2_sweep(std::span<const float> lambda2_values,
                                         CostKind kind,
                                         const accel::LinearCostWeights& weights) {
  std::vector<Scalarization> sweep;
  sweep.reserve(lambda2_values.size());
  for (const float l2 : lambda2_values) {
    Scalarization s;
    s.lambda2 = l2;
    s.cost_kind = kind;
    s.weights = weights;
    sweep.push_back(s);
  }
  return sweep;
}

std::array<double, 4> objectives(const SearchOutcome& o) {
  return {o.error_pct(), o.metrics.latency_ms, o.metrics.energy_mj,
          o.metrics.area_mm2};
}

bool finite_objectives(const SearchOutcome& o) {
  for (const double v : objectives(o)) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool dominates_outcome(const SearchOutcome& a, const SearchOutcome& b) {
  if (!finite_objectives(a) || !finite_objectives(b)) return false;
  const auto oa = objectives(a);
  const auto ob = objectives(b);
  bool le = true;
  bool lt = false;
  for (std::size_t k = 0; k < oa.size(); ++k) {
    le = le && oa[k] <= ob[k];
    lt = lt || oa[k] < ob[k];
  }
  return le && lt;
}

std::vector<std::size_t> pareto_front_indices(
    std::span<const SearchOutcome> outcomes) {
  std::vector<std::size_t> valid;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (finite_objectives(outcomes[i])) valid.push_back(i);
  }
  std::vector<std::size_t> front;
  for (const std::size_t i : valid) {
    bool keep = true;
    for (const std::size_t j : valid) {
      if (j == i) continue;
      if (dominates_outcome(outcomes[j], outcomes[i])) {
        keep = false;
        break;
      }
      // Deterministic tie-breaking: of identical objective vectors only the
      // earliest sweep index survives.
      if (j < i && objectives(outcomes[j]) == objectives(outcomes[i])) {
        keep = false;
        break;
      }
    }
    if (keep) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    const auto oa = objectives(outcomes[a]);
    const auto ob = objectives(outcomes[b]);
    if (oa != ob) return oa < ob;
    return a < b;
  });
  return front;
}

ParetoOptions::ParetoOptions()
    : parallel(util::env_bool("DANCE_SEARCH_PARALLEL_SWEEP", true)) {}

ParetoCoSearch::ParetoCoSearch(const data::SyntheticTask& task,
                               const arch::CostProvider& cost_provider,
                               evalnet::Evaluator& evaluator,
                               const nas::SuperNetConfig& net_config,
                               ParetoOptions opts)
    : task_(task),
      cost_provider_(cost_provider),
      evaluator_(evaluator),
      net_config_(net_config),
      opts_(std::move(opts)) {}

ParetoResult ParetoCoSearch::run() {
  if (opts_.sweep.empty()) {
    throw std::invalid_argument("ParetoCoSearch: empty scalarization sweep");
  }
  obs::ScopedSpan span("pareto.run");
  obs::Registry::global().counter("search.pareto.sweeps").inc();

  // Prepare the shared evaluator BEFORE fanning out: DanceSearch::run calls
  // these setters too, but they are idempotent, so with the state already in
  // place every concurrent lane's call degrades to a read (evaluator.h).
  evaluator_.set_training(false);
  evaluator_.set_frozen(true);

  const std::size_t n = opts_.sweep.size();
  std::vector<DanceOptions> entry_opts(n, opts_.base);
  for (std::size_t i = 0; i < n; ++i) {
    const Scalarization& s = opts_.sweep[i];
    entry_opts[i].lambda2 = s.lambda2;
    entry_opts[i].cost_kind = s.cost_kind;
    entry_opts[i].linear_weights = s.weights;
    entry_opts[i].seed = s.seed != 0
                             ? s.seed
                             : opts_.base.seed + 101 * (i + 1);
    entry_opts[i].verbose = false;
  }

  std::vector<SearchOutcome> outcomes(n);
  std::vector<std::exception_ptr> errors(n);
  const auto body = [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      try {
        DanceSearch search(task_, cost_provider_, evaluator_, net_config_,
                           entry_opts[idx]);
        outcomes[idx] = search.run();
      } catch (...) {
        errors[idx] = std::current_exception();
      }
    }
  };
  if (opts_.parallel && n > 1) {
    // Grain 1: one sweep entry per chunk. Inner tensor/search loops issued
    // from inside this job run inline (pool reentrancy), so the sweep is the
    // only level of parallelism and each entry stays bit-identical to a
    // serial run.
    util::parallel_for(0, static_cast<long>(n), body, /*grain=*/1);
  } else {
    body(0, static_cast<long>(n));
  }
  for (const auto& e : errors) {  // first failure in sweep order, if any
    if (e) std::rethrow_exception(e);
  }

  ParetoResult result;
  result.points.resize(n);
  std::vector<std::size_t> candidate_map;  // candidate k -> point index
  std::vector<SearchOutcome> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    result.points[i].scalarization = opts_.sweep[i];
    result.points[i].outcome = outcomes[i];
    result.points[i].feasible =
        opts_.base.constraints.feasible(outcomes[i].metrics);
    if (result.points[i].feasible && finite_objectives(outcomes[i])) {
      candidate_map.push_back(i);
      candidates.push_back(outcomes[i]);
    }
  }
  for (const std::size_t k : pareto_front_indices(candidates)) {
    const std::size_t i = candidate_map[k];
    result.points[i].on_front = true;
    result.front.push_back(i);
  }
  obs::Registry::global()
      .gauge("search.pareto.front_size")
      .set(static_cast<double>(result.front.size()));
  return result;
}

void write_front_csv(const std::string& path, const ParetoResult& result) {
  util::CsvWriter csv(path,
                      {"series", "lambda2", "cost_kind", "error_pct",
                       "latency_ms", "energy_mj", "area_mm2", "edap",
                       "feasible", "on_front"});
  const auto emit = [&](const FrontPoint& p, const char* series) {
    csv.add_row({series, fmt_double(p.scalarization.lambda2),
                 to_string(p.scalarization.cost_kind),
                 fmt_double(p.outcome.error_pct()),
                 fmt_double(p.outcome.metrics.latency_ms),
                 fmt_double(p.outcome.metrics.energy_mj),
                 fmt_double(p.outcome.metrics.area_mm2),
                 fmt_double(p.outcome.metrics.edap()), p.feasible ? "1" : "0",
                 p.on_front ? "1" : "0"});
  };
  for (const std::size_t i : result.front) emit(result.points[i], "front");
  for (const FrontPoint& p : result.points) {
    if (p.on_front) continue;
    emit(p, p.feasible ? "dominated" : "infeasible");
  }
  csv.flush();
}

hwgen::HwSearchResult constrained_optimal(const arch::CostProvider& provider,
                                          const arch::Architecture& a,
                                          const accel::HwCostFn& base_cost,
                                          const ConstraintSpec& spec) {
  const std::vector<accel::CostMetrics> all = provider.evaluate_all(a);
  if (all.empty()) {
    throw std::logic_error("constrained_optimal: empty hardware space");
  }
  long best_feasible = -1;
  double best_cost = 0.0;
  long least_violating = -1;
  double least_violation = 0.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (spec.feasible(all[i])) {
      const double c = base_cost(all[i]);
      if (best_feasible < 0 || c < best_cost) {
        best_feasible = static_cast<long>(i);
        best_cost = c;
      }
    } else {
      const double v = spec.violation(all[i]);
      if (least_violating < 0 || v < least_violation) {
        least_violating = static_cast<long>(i);
        least_violation = v;
      }
    }
  }
  const std::size_t pick = static_cast<std::size_t>(
      best_feasible >= 0 ? best_feasible : least_violating);
  hwgen::HwSearchResult r;
  r.config = provider.hw_space().config_at(pick);
  r.metrics = all[pick];
  r.cost = constrained_cost_fn(base_cost, spec)(all[pick]);
  return r;
}

std::string verify_front(const ParetoResult& result,
                         const arch::CostProvider& provider,
                         const ConstraintSpec& spec) {
  for (std::size_t fi = 0; fi < result.front.size(); ++fi) {
    const FrontPoint& p = result.points[result.front[fi]];
    // Mutual non-domination across the front (4 objectives).
    for (std::size_t fj = 0; fj < result.front.size(); ++fj) {
      if (fi == fj) continue;
      const FrontPoint& q = result.points[result.front[fj]];
      if (dominates_outcome(q.outcome, p.outcome)) {
        return "front point " + std::to_string(result.front[fi]) +
               " is dominated by front point " +
               std::to_string(result.front[fj]);
      }
    }
    // Hardware-level: no feasible configuration of the same architecture may
    // strictly dominate the point's (latency, energy, area).
    const auto all = provider.evaluate_all(p.outcome.architecture);
    for (std::size_t c = 0; c < all.size(); ++c) {
      if (!spec.feasible(all[c])) continue;
      if (dominates_metrics(all[c], p.outcome.metrics)) {
        return "front point " + std::to_string(result.front[fi]) +
               " hardware is dominated by feasible config " +
               std::to_string(c) + " of its own architecture";
      }
    }
  }
  return "";
}

// --- History-penalty exploration --------------------------------------------

ArchHistory::ArchHistory(const arch::ArchSpace& space)
    : slots_(space.num_searchable()),
      he_(static_cast<std::size_t>(space.encoding_width()), 0) {}

void ArchHistory::record(const arch::Architecture& a) {
  for (std::size_t slot = 0; slot < a.size(); ++slot) {
    const auto idx = slot * arch::kNumCandidateOps +
                     static_cast<std::size_t>(a[slot]);
    if (idx < he_.size()) ++he_[idx];
  }
}

int ArchHistory::visits(int slot, int op) const {
  const auto idx = static_cast<std::size_t>(slot) * arch::kNumCandidateOps +
                   static_cast<std::size_t>(op);
  return idx < he_.size() ? he_[idx] : 0;
}

std::vector<float> ArchHistory::penalty_encoding(double exponent) const {
  std::vector<float> row(he_.size(), 0.0F);
  for (std::size_t i = 0; i < he_.size(); ++i) {
    if (he_[i] > 0) {
      row[i] = static_cast<float>(std::pow(static_cast<double>(he_[i]), exponent));
    }
  }
  return row;
}

HwHistory::HwHistory(const hwgen::HwSearchSpace& space)
    : space_(space), he_(space.size(), 0) {}

void HwHistory::record(const accel::AcceleratorConfig& c) {
  const int pxi = space_.pe_index(c.pe_x);
  const int pyi = space_.pe_index(c.pe_y);
  const int rfi = space_.rf_index(c.rf_size);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dr = -1; dr <= 1; ++dr) {
        const int nx = pxi + dx;
        const int ny = pyi + dy;
        const int nr = rfi + dr;
        if (nx < 0 || nx >= space_.num_pe_choices()) continue;
        if (ny < 0 || ny >= space_.num_pe_choices()) continue;
        if (nr < 0 || nr >= space_.num_rf_choices()) continue;
        accel::AcceleratorConfig nb;
        nb.pe_x = space_.pe_value(nx);
        nb.pe_y = space_.pe_value(ny);
        nb.rf_size = space_.rf_value(nr);
        nb.dataflow = c.dataflow;
        ++he_[space_.index_of(nb)];
      }
    }
  }
}

int HwHistory::visits(const accel::AcceleratorConfig& c) const {
  return he_[space_.index_of(c)];
}

double HwHistory::penalty_factor(std::size_t config_index, double scale,
                                 double exponent) const {
  const int he = he_[config_index];
  if (he <= 0) return 1.0;
  return 1.0 + scale * std::pow(static_cast<double>(he), exponent);
}

RestartOptions::RestartOptions()
    : history_scale(
          util::env_double("DANCE_SEARCH_HISTORY_SCALE", 0.5, 0.0, 1e6)),
      history_exponent(
          util::env_double("DANCE_SEARCH_HISTORY_EXPONENT", 1.6, 0.1, 8.0)) {}

RestartResult run_restarts(const data::SyntheticTask& task,
                           const arch::CostProvider& provider,
                           evalnet::Evaluator& evaluator,
                           const nas::SuperNetConfig& net_config,
                           const RestartOptions& opts) {
  if (opts.restarts < 1) {
    throw std::invalid_argument("run_restarts: restarts must be >= 1");
  }
  obs::ScopedSpan span("pareto.restarts");
  obs::Registry::global()
      .counter(opts.history ? "search.restarts.history"
                            : "search.restarts.multiseed")
      .inc();

  ArchHistory arch_history(provider.arch_space());
  HwHistory hw_history(provider.hw_space());
  const accel::HwCostFn scalar_cost = constrained_cost_fn(
      make_cost_fn(opts.base.cost_kind, opts.base.linear_weights),
      opts.base.constraints);

  RestartResult result;
  result.outcomes.reserve(static_cast<std::size_t>(opts.restarts));
  for (int r = 0; r < opts.restarts; ++r) {
    DanceOptions dopts = opts.base;
    dopts.seed = opts.base.seed + static_cast<std::uint64_t>(r) * opts.seed_stride;
    std::vector<float> penalty_row;
    if (opts.history && r > 0 && opts.history_scale > 0.0) {
      penalty_row = arch_history.penalty_encoding(opts.history_exponent);
      dopts.arch_history_penalty = &penalty_row;
      dopts.history_scale = static_cast<float>(opts.history_scale);
    }
    DanceSearch search(task, provider, evaluator, net_config, dopts);
    SearchOutcome out = search.run();

    if (opts.history && opts.penalize_hardware && r > 0) {
      // Re-pick the accelerator with revisited regions costing more — the
      // hardware half of the negotiated-congestion loop. Feasibility still
      // wins: the penalty factor (>= 1, bounded) cannot promote an
      // infeasible configuration past a feasible one.
      const auto all = provider.evaluate_all(out.architecture);
      std::size_t best = 0;
      double best_cost = 0.0;
      bool first = true;
      for (std::size_t i = 0; i < all.size(); ++i) {
        const double c =
            scalar_cost(all[i]) *
            hw_history.penalty_factor(i, opts.history_scale,
                                      opts.history_exponent);
        if (first || c < best_cost) {
          best = i;
          best_cost = c;
          first = false;
        }
      }
      out.hardware = provider.hw_space().config_at(best);
      out.metrics = all[best];
    }

    if (opts.history) {
      arch_history.record(out.architecture);
      hw_history.record(out.hardware);
    }
    result.outcomes.push_back(std::move(out));
  }

  result.front = pareto_front_indices(result.outcomes);
  std::set<arch::Architecture> archs;
  std::set<std::size_t> hw_configs;
  for (const auto& o : result.outcomes) {
    archs.insert(o.architecture);
    hw_configs.insert(provider.hw_space().index_of(o.hardware));
  }
  result.distinct_architectures = static_cast<int>(archs.size());
  result.distinct_hardware = static_cast<int>(hw_configs.size());
  double dist_sum = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    for (std::size_t j = i + 1; j < result.outcomes.size(); ++j) {
      const auto& a = result.outcomes[i].architecture;
      const auto& b = result.outcomes[j].architecture;
      const std::size_t slots = std::min(a.size(), b.size());
      if (slots == 0) continue;
      int diff = 0;
      for (std::size_t s = 0; s < slots; ++s) diff += a[s] != b[s] ? 1 : 0;
      dist_sum += static_cast<double>(diff) / static_cast<double>(slots);
      ++pairs;
    }
  }
  result.mean_pairwise_arch_distance = pairs > 0 ? dist_sum / pairs : 0.0;
  obs::Registry::global()
      .gauge("search.restarts.distinct_architectures")
      .set(static_cast<double>(result.distinct_architectures));
  return result;
}

}  // namespace dance::search
