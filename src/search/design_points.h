#pragma once

#include <span>

#include "accel/cost_function.h"
#include "search/outcome.h"

namespace dance::search {

/// The two design points the paper reports per cost function (§4.3):
/// -A, the most accurate design of a lambda2 sweep, and -B, the cheapest
/// design whose accuracy stays within `accuracy_budget_pct` of -A.
struct DesignPoints {
  SearchOutcome accuracy_oriented;   ///< "-A"
  SearchOutcome efficiency_oriented; ///< "-B"
};

/// Select -A and -B from a sweep of search outcomes. Throws on an empty
/// sweep. When no design is cheaper within the budget, -B equals -A.
/// Outcomes whose accuracy, metrics or cost are non-finite are skipped (they
/// would otherwise poison the comparisons — NaN never orders); when *every*
/// outcome is non-finite the sweep is unusable and std::invalid_argument is
/// thrown.
[[nodiscard]] DesignPoints select_design_points(
    std::span<const SearchOutcome> sweep, const accel::HwCostFn& cost_fn,
    double accuracy_budget_pct = 1.0);

}  // namespace dance::search
