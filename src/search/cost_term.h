#pragma once

#include <cmath>
#include <limits>

#include "accel/cost_function.h"
#include "tensor/ops.h"

namespace dance::search {

/// Which Cost_HW of §3.5 the search optimizes.
enum class CostKind {
  kLinear,  ///< Eq. 3: lambda_E*E + lambda_L*L + lambda_A*A
  kEdap,    ///< Eq. 4: E * L * A
};

/// Differentiable Cost_HW from the evaluator's predicted metrics
/// ([1, 3] = latency_ms, energy_mj, area_mm2). The returned scalar variable
/// back-propagates into the architecture parameters through the evaluator.
[[nodiscard]] inline tensor::Variable hw_cost_variable(
    const tensor::Variable& metrics, CostKind kind,
    const accel::LinearCostWeights& weights = {}) {
  namespace ops = dance::tensor::ops;
  const tensor::Variable lat = ops::slice_cols(metrics, 0, 1);
  const tensor::Variable energy = ops::slice_cols(metrics, 1, 2);
  const tensor::Variable area = ops::slice_cols(metrics, 2, 3);
  switch (kind) {
    case CostKind::kLinear:
      return ops::add(
          ops::add(ops::scale(lat, static_cast<float>(weights.lambda_l)),
                   ops::scale(energy, static_cast<float>(weights.lambda_e))),
          ops::scale(area, static_cast<float>(weights.lambda_a)));
    case CostKind::kEdap:
      return ops::mul(ops::mul(lat, energy), area);
  }
  throw std::logic_error("hw_cost_variable: unknown kind");
}

/// The matching scalar (non-differentiable) cost function for exact
/// hardware generation and reporting.
[[nodiscard]] inline accel::HwCostFn make_cost_fn(
    CostKind kind, const accel::LinearCostWeights& weights = {}) {
  return kind == CostKind::kLinear ? accel::linear_cost(weights)
                                   : accel::edap_cost();
}

[[nodiscard]] inline const char* to_string(CostKind kind) {
  return kind == CostKind::kLinear ? "linear" : "EDAP";
}

// --- Hard constraints (docs/search.md) --------------------------------------

/// Deployment constraints on the discovered accelerator: a die-area budget
/// and a latency SLO. Unset dimensions default to +inf (unconstrained).
/// During the gradient search the spec is lowered into a differentiable
/// penalty (`constraint_penalty_variable`) that ramps in LambdaWarmup-style;
/// at exact hardware-generation time it is lowered into a feasibility filter
/// on the scalar cost (`constrained_cost_fn`).
struct ConstraintSpec {
  double area_budget_mm2 = std::numeric_limits<double>::infinity();
  double latency_slo_ms = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool enabled() const {
    return std::isfinite(area_budget_mm2) || std::isfinite(latency_slo_ms);
  }

  /// NaN metrics compare false against any budget, so a poisoned design is
  /// never feasible.
  [[nodiscard]] bool feasible(const accel::CostMetrics& m) const {
    return m.area_mm2 <= area_budget_mm2 && m.latency_ms <= latency_slo_ms;
  }

  /// Summed relative violation: 0 when feasible, (metric/budget - 1) per
  /// violated dimension, +inf for non-finite metrics (worse than any real
  /// violation).
  [[nodiscard]] double violation(const accel::CostMetrics& m) const {
    if (!std::isfinite(m.area_mm2) || !std::isfinite(m.latency_ms)) {
      return std::numeric_limits<double>::infinity();
    }
    double v = 0.0;
    if (std::isfinite(area_budget_mm2) && area_budget_mm2 > 0.0) {
      v += std::max(0.0, m.area_mm2 / area_budget_mm2 - 1.0);
    }
    if (std::isfinite(latency_slo_ms) && latency_slo_ms > 0.0) {
      v += std::max(0.0, m.latency_ms / latency_slo_ms - 1.0);
    }
    return v;
  }
};

/// Cost assigned to infeasible configurations by `constrained_cost_fn`. Far
/// above any value the analytical model produces for real designs, so the
/// arg-min can only land on an infeasible configuration when no feasible one
/// exists — and then prefers the least-violating one.
inline constexpr double kInfeasibleCost = 1e18;

/// Scalar cost with the constraints lowered in: feasible metrics keep the
/// base cost, infeasible metrics cost kInfeasibleCost * (1 + violation)
/// (violation capped so the product stays finite). Assumes base costs stay
/// below kInfeasibleCost, which holds for Eq. 3 / Eq. 4 over the modeled
/// space by many orders of magnitude.
[[nodiscard]] inline accel::HwCostFn constrained_cost_fn(
    accel::HwCostFn base, const ConstraintSpec& spec) {
  if (!spec.enabled()) return base;
  return [base = std::move(base), spec](const accel::CostMetrics& m) {
    if (spec.feasible(m)) return base(m);
    return kInfeasibleCost * (1.0 + std::min(spec.violation(m), 1e6));
  };
}

/// Differentiable constraint penalty from predicted metrics
/// ([N, 3] = latency_ms, energy_mj, area_mm2):
///   relu(latency/SLO - 1) + relu(area/budget - 1), summed over the batch.
/// Zero (with zero gradient) inside the feasible region; outside it the
/// gradient pushes the violated metric back toward its budget, scaled by
/// 1/budget so both dimensions ramp comparably. The caller weights the term
/// (LambdaWarmup-style ramp-in) before adding it to the Eq. 1 loss.
[[nodiscard]] inline tensor::Variable constraint_penalty_variable(
    const tensor::Variable& metrics, const ConstraintSpec& spec) {
  namespace ops = dance::tensor::ops;
  const int rows = metrics.value().shape()[0];
  const tensor::Tensor minus_one = tensor::Tensor::full({rows, 1}, -1.0F);
  tensor::Variable total;
  const auto add_term = [&](int col, double budget) {
    if (!std::isfinite(budget) || budget <= 0.0) return;
    const tensor::Variable ratio =
        ops::scale(ops::slice_cols(metrics, col, col + 1),
                   static_cast<float>(1.0 / budget));
    const tensor::Variable over = ops::relu(ops::add_const(ratio, minus_one));
    total = total.defined() ? ops::add(total, over) : over;
  };
  add_term(0, spec.latency_slo_ms);
  add_term(2, spec.area_budget_mm2);
  if (!total.defined()) {
    return tensor::Variable(tensor::Tensor::zeros({1, 1}));
  }
  return ops::sum_all(total);
}

}  // namespace dance::search
