#pragma once

#include "accel/cost_function.h"
#include "tensor/ops.h"

namespace dance::search {

/// Which Cost_HW of §3.5 the search optimizes.
enum class CostKind {
  kLinear,  ///< Eq. 3: lambda_E*E + lambda_L*L + lambda_A*A
  kEdap,    ///< Eq. 4: E * L * A
};

/// Differentiable Cost_HW from the evaluator's predicted metrics
/// ([1, 3] = latency_ms, energy_mj, area_mm2). The returned scalar variable
/// back-propagates into the architecture parameters through the evaluator.
[[nodiscard]] inline tensor::Variable hw_cost_variable(
    const tensor::Variable& metrics, CostKind kind,
    const accel::LinearCostWeights& weights = {}) {
  namespace ops = dance::tensor::ops;
  const tensor::Variable lat = ops::slice_cols(metrics, 0, 1);
  const tensor::Variable energy = ops::slice_cols(metrics, 1, 2);
  const tensor::Variable area = ops::slice_cols(metrics, 2, 3);
  switch (kind) {
    case CostKind::kLinear:
      return ops::add(
          ops::add(ops::scale(lat, static_cast<float>(weights.lambda_l)),
                   ops::scale(energy, static_cast<float>(weights.lambda_e))),
          ops::scale(area, static_cast<float>(weights.lambda_a)));
    case CostKind::kEdap:
      return ops::mul(ops::mul(lat, energy), area);
  }
  throw std::logic_error("hw_cost_variable: unknown kind");
}

/// The matching scalar (non-differentiable) cost function for exact
/// hardware generation and reporting.
[[nodiscard]] inline accel::HwCostFn make_cost_fn(
    CostKind kind, const accel::LinearCostWeights& weights = {}) {
  return kind == CostKind::kLinear ? accel::linear_cost(weights)
                                   : accel::edap_cost();
}

[[nodiscard]] inline const char* to_string(CostKind kind) {
  return kind == CostKind::kLinear ? "linear" : "EDAP";
}

}  // namespace dance::search
