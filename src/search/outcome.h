#pragma once

#include "accel/cost_model.h"
#include "arch/space.h"

namespace dance::search {

/// Result of one co-exploration (or baseline) run, in the shape of a
/// Table 2 / Table 4 row.
struct SearchOutcome {
  arch::Architecture architecture;
  double val_accuracy_pct = 0.0;   ///< from-scratch retrained accuracy
  accel::AcceleratorConfig hardware;
  accel::CostMetrics metrics;      ///< exact metrics on that hardware
  double search_seconds = 0.0;
  int trained_candidates = 1;      ///< networks trained during search

  /// Validation error in percent — the first of the four minimization
  /// objectives of the multi-objective mode (search/pareto.h).
  [[nodiscard]] double error_pct() const { return 100.0 - val_accuracy_pct; }
};

}  // namespace dance::search
