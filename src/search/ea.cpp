#include "search/ea.h"

#include <chrono>
#include <deque>
#include <limits>
#include <stdexcept>

namespace dance::search {

namespace {

/// One genome of the joint co-exploration space.
struct Genome {
  arch::Architecture architecture;
  accel::AcceleratorConfig hardware;
  double fitness = 0.0;
  double proxy_accuracy_pct = 0.0;
  accel::CostMetrics metrics;
};

}  // namespace

SearchOutcome run_ea_coexploration(const data::SyntheticTask& task,
                                   const arch::CostProvider& cost_table,
                                   const nas::SuperNetConfig& net_config,
                                   const EaOptions& opts) {
  if (opts.population < 2 || opts.generations < 1 || opts.tournament < 1) {
    throw std::invalid_argument("run_ea_coexploration: bad options");
  }
  const auto t_start = std::chrono::steady_clock::now();
  util::Rng rng(opts.seed);
  const auto& arch_space = cost_table.arch_space();
  const auto& hw_space = cost_table.hw_space();
  const accel::HwCostFn cost_fn = make_cost_fn(opts.cost_kind, opts.linear_weights);

  nas::FixedTrainOptions proxy;
  proxy.epochs = opts.proxy_epochs;
  proxy.batch_size = opts.proxy_batch_size;
  proxy.lr = opts.proxy_lr;

  double cost_ref;
  {
    const arch::Architecture probe = arch_space.random(rng);
    cost_ref = std::max(1e-12, cost_table.optimal(probe, cost_fn).cost);
  }

  int trained = 0;
  auto evaluate = [&](Genome& g) {
    proxy.seed = opts.seed + static_cast<std::uint64_t>(++trained) * 13;
    util::Rng init_rng(proxy.seed);
    nas::FixedNet net(net_config, g.architecture, init_rng);
    const nas::FixedTrainResult r = nas::train_fixed_net(net, task, proxy);
    g.proxy_accuracy_pct = r.val_accuracy_pct;
    g.metrics = cost_table.metrics(hw_space.index_of(g.hardware), g.architecture);
    g.fitness =
        r.val_accuracy_pct / 100.0 - opts.beta * cost_fn(g.metrics) / cost_ref;
  };

  auto random_hw = [&]() {
    return hw_space.config_at(static_cast<std::size_t>(
        rng.randint(0, static_cast<int>(hw_space.size()) - 1)));
  };
  auto mutate = [&](Genome child) {
    // One point mutation on either the network or the accelerator side.
    if (rng.randint(0, 1) == 0) {
      const int slot = rng.randint(0, arch_space.num_searchable() - 1);
      child.architecture[static_cast<std::size_t>(slot)] =
          arch::kAllCandidateOps[static_cast<std::size_t>(
              rng.randint(0, arch::kNumCandidateOps - 1))];
    } else {
      const auto& o = hw_space.options();
      switch (rng.randint(0, 3)) {
        case 0: child.hardware.pe_x = rng.randint(o.pe_min, o.pe_max); break;
        case 1: child.hardware.pe_y = rng.randint(o.pe_min, o.pe_max); break;
        case 2:
          child.hardware.rf_size =
              hw_space.rf_value(rng.randint(0, hw_space.num_rf_choices() - 1));
          break;
        default:
          child.hardware.dataflow = hw_space.dataflow_value(rng.randint(0, 2));
          break;
      }
    }
    return child;
  };

  // Initial population: random genomes (aging/regularized evolution queue).
  std::deque<Genome> population;
  Genome best;
  best.fitness = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < opts.population; ++i) {
    Genome g;
    g.architecture = arch_space.random(rng);
    g.hardware = random_hw();
    evaluate(g);
    if (g.fitness > best.fitness) best = g;
    population.push_back(std::move(g));
  }

  for (int gen = 0; gen < opts.generations; ++gen) {
    for (int i = 0; i < opts.population; ++i) {
      // Tournament selection of a parent.
      const Genome* parent = nullptr;
      for (int t = 0; t < opts.tournament; ++t) {
        const auto& cand = population[static_cast<std::size_t>(
            rng.randint(0, static_cast<int>(population.size()) - 1))];
        if (parent == nullptr || cand.fitness > parent->fitness) parent = &cand;
      }
      Genome child = mutate(*parent);
      evaluate(child);
      if (child.fitness > best.fitness) best = child;
      // Regularized evolution: kill the oldest, not the weakest.
      population.push_back(std::move(child));
      population.pop_front();
    }
  }

  SearchOutcome out;
  out.architecture = best.architecture;
  out.hardware = best.hardware;
  out.metrics = best.metrics;
  out.trained_candidates = trained;
  const auto t_end = std::chrono::steady_clock::now();
  out.search_seconds = std::chrono::duration<double>(t_end - t_start).count();

  util::Rng retrain_rng(opts.seed + 1);
  nas::FixedNet fixed(net_config, out.architecture, retrain_rng);
  const nas::FixedTrainResult r = nas::train_fixed_net(fixed, task, opts.retrain);
  out.val_accuracy_pct = r.val_accuracy_pct;
  return out;
}

}  // namespace dance::search
