#include "search/rl.h"

#include <chrono>
#include <cmath>
#include <limits>

namespace dance::search {

namespace {

/// Softmax over a logit vector.
std::vector<float> softmax(const std::vector<float>& logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  std::vector<float> p(logits.size());
  float sum = 0.0F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

/// REINFORCE update on one categorical head: theta += lr * adv * d log pi.
void reinforce_update(std::vector<float>& logits, int action, float advantage,
                      float lr) {
  const auto p = softmax(logits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float indicator = (static_cast<int>(i) == action) ? 1.0F : 0.0F;
    logits[i] += lr * advantage * (indicator - p[i]);
  }
}

}  // namespace

SearchOutcome run_rl_coexploration(const data::SyntheticTask& task,
                                   const arch::CostProvider& cost_table,
                                   const nas::SuperNetConfig& net_config,
                                   const RlOptions& opts) {
  const auto t_start = std::chrono::steady_clock::now();
  util::Rng rng(opts.seed);
  const auto& arch_space = cost_table.arch_space();
  const auto& hw_space = cost_table.hw_space();
  const int slots = arch_space.num_searchable();

  // Controller: independent categorical heads for every architecture slot
  // and every accelerator design dimension.
  std::vector<std::vector<float>> arch_logits(
      static_cast<std::size_t>(slots),
      std::vector<float>(arch::kNumCandidateOps, 0.0F));
  std::vector<std::vector<float>> hw_logits = {
      std::vector<float>(static_cast<std::size_t>(hw_space.num_pe_choices()), 0.0F),
      std::vector<float>(static_cast<std::size_t>(hw_space.num_pe_choices()), 0.0F),
      std::vector<float>(static_cast<std::size_t>(hw_space.num_rf_choices()), 0.0F),
      std::vector<float>(3, 0.0F)};

  const accel::HwCostFn cost_fn = make_cost_fn(opts.cost_kind, opts.linear_weights);

  // Cost scale reference: a mid-range configuration on a random architecture,
  // so rewards are O(1).
  double cost_ref;
  {
    const arch::Architecture probe = arch_space.random(rng);
    cost_ref = std::max(1e-12, cost_table.optimal(probe, cost_fn).cost);
  }

  // Proxy training options shared by every candidate.
  nas::FixedTrainOptions proxy;
  proxy.epochs = opts.proxy_epochs;
  proxy.batch_size = opts.proxy_batch_size;
  proxy.lr = opts.proxy_lr;

  double reward_baseline = 0.0;
  bool baseline_init = false;

  SearchOutcome best;
  double best_reward = -std::numeric_limits<double>::infinity();

  for (int cand = 0; cand < opts.num_candidates; ++cand) {
    // Sample a joint candidate.
    arch::Architecture a;
    std::vector<int> arch_actions(static_cast<std::size_t>(slots));
    for (int s = 0; s < slots; ++s) {
      const int action = rng.categorical(softmax(arch_logits[static_cast<std::size_t>(s)]));
      arch_actions[static_cast<std::size_t>(s)] = action;
      a.push_back(arch::kAllCandidateOps[static_cast<std::size_t>(action)]);
    }
    std::array<int, 4> hw_actions{};
    for (int h = 0; h < 4; ++h) {
      hw_actions[static_cast<std::size_t>(h)] =
          rng.categorical(softmax(hw_logits[static_cast<std::size_t>(h)]));
    }
    const accel::AcceleratorConfig config{
        hw_space.pe_value(hw_actions[0]), hw_space.pe_value(hw_actions[1]),
        hw_space.rf_value(hw_actions[2]), hw_space.dataflow_value(hw_actions[3])};

    // Evaluate the candidate: proxy-train the network, cost-model the HW.
    proxy.seed = opts.seed + static_cast<std::uint64_t>(cand) + 101;
    util::Rng cand_rng(proxy.seed);
    nas::FixedNet net(net_config, a, cand_rng);
    const nas::FixedTrainResult r = nas::train_fixed_net(net, task, proxy);
    const accel::CostMetrics metrics =
        cost_table.metrics(hw_space.index_of(config), a);
    const double cost = cost_fn(metrics);
    const double reward =
        r.val_accuracy_pct / 100.0 - opts.beta * cost / cost_ref;

    if (!baseline_init) {
      reward_baseline = reward;
      baseline_init = true;
    }
    const float advantage = static_cast<float>(reward - reward_baseline);
    reward_baseline = 0.9 * reward_baseline + 0.1 * reward;

    for (int s = 0; s < slots; ++s) {
      reinforce_update(arch_logits[static_cast<std::size_t>(s)],
                       arch_actions[static_cast<std::size_t>(s)], advantage,
                       opts.policy_lr);
    }
    for (int h = 0; h < 4; ++h) {
      reinforce_update(hw_logits[static_cast<std::size_t>(h)],
                       hw_actions[static_cast<std::size_t>(h)], advantage,
                       opts.policy_lr);
    }

    if (reward > best_reward) {
      best_reward = reward;
      best.architecture = a;
      best.hardware = config;
      best.metrics = metrics;
    }
  }

  const auto t_end = std::chrono::steady_clock::now();
  best.search_seconds = std::chrono::duration<double>(t_end - t_start).count();
  best.trained_candidates = opts.num_candidates;

  // Full retraining of the winner, as the RL works do after search.
  util::Rng retrain_rng(opts.seed + 1);
  nas::FixedNet fixed(net_config, best.architecture, retrain_rng);
  const nas::FixedTrainResult r = nas::train_fixed_net(fixed, task, opts.retrain);
  best.val_accuracy_pct = r.val_accuracy_pct;
  return best;
}

}  // namespace dance::search
