#pragma once

#include "arch/cost_provider.h"
#include "data/synthetic.h"
#include "nas/supernet.h"
#include "nas/trainer.h"
#include "search/cost_term.h"
#include "search/outcome.h"

namespace dance::search {

/// Options of the hardware-oblivious ProxylessNAS baseline of Table 2:
/// differentiable NAS with no hardware term ("No penalty") or with a
/// differentiable expected-FLOPs regularizer ("Flops penalty"), followed by
/// post-hoc exact hardware generation on the searched network.
struct BaselineOptions {
  int search_epochs = 24;
  int batch_size = 128;
  /// Run the architecture step every N-th batch (cf. DanceOptions).
  int arch_update_period = 2;
  float weight_lr = 0.01F;
  float weight_momentum = 0.9F;
  float weight_decay = 4e-5F;
  float arch_lr = 5e-3F;
  /// Weight of the expected-FLOPs penalty (0 = "No penalty" baseline).
  /// The penalty term is flops_weight * E[MACs]/1e6.
  float flops_weight = 0.0F;
  float gumbel_tau = 1.0F;
  /// Cost function used for the *post-hoc* hardware generation and reports.
  CostKind cost_kind = CostKind::kEdap;
  accel::LinearCostWeights linear_weights{};
  nas::FixedTrainOptions retrain{};
  std::uint64_t seed = 42;
};

/// Run the baseline search ("Baseline (No penalty) + HW" /
/// "Baseline (Flops penalty) + HW" rows).
[[nodiscard]] SearchOutcome run_baseline(const data::SyntheticTask& task,
                                         const arch::CostProvider& cost_table,
                                         const nas::SuperNetConfig& net_config,
                                         const BaselineOptions& opts);

}  // namespace dance::search
