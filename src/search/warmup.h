#pragma once

#include <algorithm>

namespace dance::search {

/// Hyper-parameter warm-up for lambda_2 (§3.4): the hardware cost weight is
/// kept small for the first epochs so the architecture does not collapse to
/// all-Zero before it reaches a high-accuracy region, then ramps linearly to
/// its target value. `initial > target` down-ramps are supported (used by
/// annealed penalty schedules); the value then decreases monotonically from
/// `initial` to `target` over the same ramp window.
///
/// Edge cases are normalized in the constructor so `value()` is total:
///  * negative `warmup_epochs` behaves like 0 (the ramp starts at epoch 0),
///  * `ramp_epochs < 1` behaves like 1 (one-epoch jump to the target).
/// The ramp progress is computed in 64-bit arithmetic, so `value(epoch)`
/// is exact for any `int` epoch — including INT_MAX, which used to overflow
/// `epoch - warmup_epochs` when `warmup_epochs` was negative and return a
/// wildly extrapolated value instead of the target.
class LambdaWarmup {
 public:
  LambdaWarmup(float initial, float target, int warmup_epochs, int ramp_epochs = 1)
      : initial_(initial),
        target_(target),
        warmup_epochs_(std::max(0, warmup_epochs)),
        ramp_epochs_(std::max(1, ramp_epochs)) {}

  [[nodiscard]] float value(int epoch) const {
    if (epoch < warmup_epochs_) return initial_;
    const long long done = static_cast<long long>(epoch) -
                           static_cast<long long>(warmup_epochs_);
    if (done >= static_cast<long long>(ramp_epochs_)) return target_;
    const float t =
        static_cast<float>(done) / static_cast<float>(ramp_epochs_);
    return initial_ + (target_ - initial_) * t;
  }

 private:
  float initial_;
  float target_;
  int warmup_epochs_;
  int ramp_epochs_;
};

}  // namespace dance::search
