#pragma once

#include <algorithm>

namespace dance::search {

/// Hyper-parameter warm-up for lambda_2 (§3.4): the hardware cost weight is
/// kept small for the first epochs so the architecture does not collapse to
/// all-Zero before it reaches a high-accuracy region, then ramps linearly to
/// its target value.
class LambdaWarmup {
 public:
  LambdaWarmup(float initial, float target, int warmup_epochs, int ramp_epochs = 1)
      : initial_(initial),
        target_(target),
        warmup_epochs_(warmup_epochs),
        ramp_epochs_(std::max(1, ramp_epochs)) {}

  [[nodiscard]] float value(int epoch) const {
    if (epoch < warmup_epochs_) return initial_;
    const float t = static_cast<float>(epoch - warmup_epochs_) /
                    static_cast<float>(ramp_epochs_);
    return t >= 1.0F ? target_ : initial_ + (target_ - initial_) * t;
  }

 private:
  float initial_;
  float target_;
  int warmup_epochs_;
  int ramp_epochs_;
};

}  // namespace dance::search
