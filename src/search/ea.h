#pragma once

#include "arch/cost_provider.h"
#include "data/synthetic.h"
#include "nas/supernet.h"
#include "nas/trainer.h"
#include "search/cost_term.h"
#include "search/outcome.h"

namespace dance::search {

/// Options of the evolutionary co-exploration baseline: regularized
/// evolution (Real et al. 2019, cited in §2.1) extended to the *joint*
/// (architecture, accelerator) genome. Like the RL baseline, every sampled
/// child must be proxy-trained, so the search cost scales with the number of
/// evaluated candidates — the axis on which DANCE wins.
struct EaOptions {
  int population = 16;
  int generations = 8;       ///< children = population * generations
  int tournament = 4;        ///< sample size for parent selection
  int proxy_epochs = 3;
  int proxy_batch_size = 128;
  float proxy_lr = 0.01F;
  /// Fitness = accuracy/100 - beta * cost / cost_reference.
  float beta = 0.5F;
  CostKind cost_kind = CostKind::kEdap;
  accel::LinearCostWeights linear_weights{};
  nas::FixedTrainOptions retrain{};
  std::uint64_t seed = 42;
};

/// Run the evolutionary co-exploration; `trained_candidates` equals the
/// number of proxy-trained genomes (population + children).
[[nodiscard]] SearchOutcome run_ea_coexploration(
    const data::SyntheticTask& task, const arch::CostProvider& cost_table,
    const nas::SuperNetConfig& net_config, const EaOptions& opts);

}  // namespace dance::search
