#pragma once

#include "arch/cost_provider.h"
#include "data/synthetic.h"
#include "nas/supernet.h"
#include "nas/trainer.h"
#include "search/cost_term.h"
#include "search/outcome.h"

namespace dance::search {

/// Options of the RL-based co-exploration comparator (Fig. 2 / Table 3):
/// a REINFORCE controller over the *joint* (architecture, accelerator)
/// space. Every candidate must be trained to obtain its reward — the
/// search-cost problem DANCE eliminates.
struct RlOptions {
  int num_candidates = 120;     ///< candidates sampled & trained
  /// Proxy training budget per candidate (the expensive part; real RL
  /// co-explorations train each candidate for hours).
  int proxy_epochs = 3;
  int proxy_batch_size = 128;
  float proxy_lr = 0.01F;
  float policy_lr = 0.15F;
  /// Reward = accuracy/100 - beta * cost / cost_reference.
  float beta = 0.5F;
  CostKind cost_kind = CostKind::kEdap;
  accel::LinearCostWeights linear_weights{};
  nas::FixedTrainOptions retrain{};
  std::uint64_t seed = 42;
};

/// Run the RL co-exploration and return the best candidate, fully
/// retrained. `trained_candidates` in the outcome equals
/// `opts.num_candidates` — the Table 3 comparison point.
[[nodiscard]] SearchOutcome run_rl_coexploration(
    const data::SyntheticTask& task, const arch::CostProvider& cost_table,
    const nas::SuperNetConfig& net_config, const RlOptions& opts);

}  // namespace dance::search
