#include "search/dance.h"

#include <chrono>
#include <cstdio>

#include "nn/optim.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/profiler.h"

namespace dance::search {

namespace ops = tensor::ops;
using tensor::Variable;

DanceSearch::DanceSearch(const data::SyntheticTask& task,
                         const arch::CostProvider& cost_table,
                         evalnet::Evaluator& evaluator,
                         const nas::SuperNetConfig& net_config,
                         const DanceOptions& opts)
    : task_(task),
      cost_table_(cost_table),
      evaluator_(evaluator),
      net_config_(net_config),
      opts_(opts) {}

SearchOutcome DanceSearch::run() {
  obs::ScopedSpan run_span("dance.run");
  const auto t_start = std::chrono::steady_clock::now();
  util::Rng rng(opts_.seed);

  // The evaluator is pre-trained and frozen; only the gradient *through* it
  // reaches the architecture parameters. Eval mode so batch norm uses its
  // running statistics (the search feeds single-row encodings).
  evaluator_.set_frozen(true);
  evaluator_.set_training(false);

  nas::SuperNet supernet(net_config_, rng);

  nn::Sgd::Options sgd;
  sgd.lr = opts_.weight_lr;
  sgd.momentum = opts_.weight_momentum;
  sgd.nesterov = true;
  sgd.weight_decay = opts_.weight_decay;  // lambda_1 ||w|| of Eq. 1
  sgd.max_grad_norm = 2.0F;
  nn::Sgd weight_opt(supernet.weight_parameters(), sgd);
  const nn::CosineSchedule weight_schedule(opts_.weight_lr, opts_.search_epochs);

  nn::Adam::Options adam;
  adam.lr = opts_.arch_lr;
  nn::Adam arch_opt(supernet.arch_parameters(), adam);

  const LambdaWarmup warmup(opts_.warmup_lambda2, opts_.lambda2,
                            opts_.warmup_epochs,
                            std::max(1, opts_.search_epochs / 6));
  // Constraint penalty ramps in on its own warm-up (defaulting to the
  // lambda2 schedule) so early epochs can reach a high-accuracy region
  // before the feasibility pressure lands.
  const LambdaWarmup constraint_warmup(
      0.0F, opts_.constraints.enabled() ? opts_.constraint_weight : 0.0F,
      opts_.constraint_warmup_epochs >= 0 ? opts_.constraint_warmup_epochs
                                          : opts_.warmup_epochs,
      std::max(1, opts_.search_epochs / 6));
  // History penalty for the restart explorer: a constant [1, W] row over the
  // arch one-hot encoding, dotted with the (straight-through) encoding every
  // arch step. Materialized once outside the epoch loop.
  tensor::Tensor history_row;
  if (opts_.arch_history_penalty != nullptr && opts_.history_scale > 0.0F) {
    history_row = tensor::Tensor::from(
        {static_cast<int>(opts_.arch_history_penalty->size())},
        *opts_.arch_history_penalty);
  }

  obs::Gauge& lambda2_gauge = obs::Registry::global().gauge("dance.lambda2");
  obs::Gauge& loss_gauge = obs::Registry::global().gauge("dance.arch_loss");
  const int n = task_.train.size();
  const int period = std::max(1, opts_.arch_update_period);
  for (int epoch = 0; epoch < opts_.search_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("dance.epoch");
    weight_opt.set_lr(weight_schedule.lr(epoch));
    const float lambda2 = warmup.value(epoch);
    lambda2_gauge.set(lambda2);
    double arch_loss_sum = 0.0;
    int arch_steps = 0;
    const auto perm = rng.permutation(n);
    int batch_index = 0;
    for (int start = 0; start < n; start += opts_.batch_size, ++batch_index) {
      const int stop = std::min(n, start + opts_.batch_size);
      const std::vector<int> idx(perm.begin() + start, perm.begin() + stop);
      auto [bx, by] = task_.train.batch(idx);
      const Variable x(std::move(bx));

      // --- Weight step: single sampled path (binarized training). ---
      {
        DANCE_PROFILE_SCOPE("dance.weight_step");
        arch::Architecture sampled;
        sampled.reserve(static_cast<std::size_t>(net_config_.num_blocks));
        for (const auto& p : supernet.arch_probs()) {
          std::vector<float> w(p.begin(), p.end());
          sampled.push_back(arch::kAllCandidateOps[static_cast<std::size_t>(
              rng.categorical(w))]);
        }
        const Variable logits = supernet.forward_fixed(x, sampled);
        const Variable loss = ops::cross_entropy(logits, by);
        weight_opt.zero_grad();
        for (auto& a : supernet.arch_parameters()) a.zero_grad();
        loss.backward();
        weight_opt.step();
      }

      // --- Architecture step: Eq. 1 through the evaluator. ---
      if (batch_index % period == 0) {
        DANCE_PROFILE_SCOPE("dance.arch_step");
        Variable logits;
        Variable enc;
        if (opts_.arch_update == ArchUpdate::kBinarizedTwoPath) {
          const auto samples = supernet.sample_two_paths(rng);
          logits = supernet.forward_two_path(x, samples);
          enc = nas::SuperNet::encode_two_path(samples);
        } else {
          nas::Gates gates =
              supernet.sample_gates(opts_.gumbel_tau, /*hard=*/true, rng);
          logits = supernet.forward(x, gates);
          enc = nas::SuperNet::encode_gates(gates);
        }
        Variable loss = ops::cross_entropy(logits, by);
        const float cweight = constraint_warmup.value(epoch);
        if (lambda2 > 0.0F || cweight > 0.0F) {
          const evalnet::Evaluator::Output out = evaluator_.forward(enc, rng);
          if (lambda2 > 0.0F) {
            const Variable cost = hw_cost_variable(out.metrics, opts_.cost_kind,
                                                   opts_.linear_weights);
            loss = ops::add(loss, ops::sum_all(ops::scale(cost, lambda2)));
          }
          if (cweight > 0.0F) {
            const Variable penalty =
                constraint_penalty_variable(out.metrics, opts_.constraints);
            loss = ops::add(loss, ops::scale(penalty, cweight));
          }
        }
        if (history_row.numel() > 0) {
          // <encoding, he-penalty>: straight-through gates make this push
          // arch parameters away from regions earlier restarts converged to.
          loss = ops::add(
              loss, ops::scale(ops::sum_all(ops::mul_rowvec(enc, history_row)),
                               opts_.history_scale));
        }
        arch_loss_sum += loss.value()[0];
        ++arch_steps;
        arch_opt.zero_grad();
        for (auto& w : supernet.weight_parameters()) w.zero_grad();
        loss.backward();
        arch_opt.step();
      }
    }
    if (arch_steps > 0) loss_gauge.set(arch_loss_sum / arch_steps);
    if (opts_.verbose) {
      const auto a = supernet.derive();
      std::printf("[dance] epoch %2d lambda2=%.3f macs=%lld\n", epoch + 1,
                  static_cast<double>(lambda2),
                  static_cast<long long>(cost_table_.arch_space().macs(a)));
    }
  }

  final_probs_ = supernet.arch_probs();

  SearchOutcome outcome;
  outcome.architecture = supernet.derive();
  const auto t_end = std::chrono::steady_clock::now();
  outcome.search_seconds =
      std::chrono::duration<double>(t_end - t_start).count();
  outcome.trained_candidates = 1;  // the defining property of DANCE
  obs::Registry::global().gauge("dance.macs").set(static_cast<double>(
      cost_table_.arch_space().macs(outcome.architecture)));
  obs::Registry::global().gauge("dance.search_seconds")
      .set(outcome.search_seconds);

  // One-time exact hardware generation after the search (§4.3). With
  // constraints the arg-min runs over the penalized cost, so a feasible
  // configuration wins whenever one exists (tests/test_property_pareto.cpp
  // pins this against the filtered exhaustive oracle).
  {
    DANCE_PROFILE_SCOPE("dance.hwgen");
    const hwgen::HwSearchResult hw = cost_table_.optimal(
        outcome.architecture,
        constrained_cost_fn(make_cost_fn(opts_.cost_kind, opts_.linear_weights),
                            opts_.constraints));
    outcome.hardware = hw.config;
    outcome.metrics = hw.metrics;
  }

  // Retrain the derived network from scratch.
  {
    DANCE_PROFILE_SCOPE("dance.retrain");
    util::Rng retrain_rng(opts_.seed + 1);
    nas::FixedNet fixed(net_config_, outcome.architecture, retrain_rng);
    const nas::FixedTrainResult r = nas::train_fixed_net(fixed, task_, opts_.retrain);
    outcome.val_accuracy_pct = r.val_accuracy_pct;
  }

  // With DANCE_PROFILE=1 (or set_profiling_enabled), show where the search
  // run's wall-clock went, aggregated per op.
  if (runtime::profiling_enabled()) {
    std::printf("[dance] profile:\n%s", runtime::profiler_report().c_str());
  }
  return outcome;
}

}  // namespace dance::search
