#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "arch/cost_provider.h"
#include "search/dance.h"

namespace dance::search {

// ---------------------------------------------------------------------------
// Multi-objective co-search (docs/search.md).
//
// The paper collapses the objective to one scalar (Eq. 3 linear mix or the
// Eq. 4 EDAP), so every run yields a single design. The Pareto mode sweeps a
// ladder of scalarizations — lambda2 values and/or Eq. 3 weight settings —
// across the runtime::global_pool() lanes in ONE invocation, then reports
// the non-dominated (error, latency, energy, area) front of the collected
// outcomes. Hard constraints (ConstraintSpec) filter the front and steer
// each scalarized search through the warm-ramped penalty term.
// ---------------------------------------------------------------------------

/// One scalarization of the sweep: the lambda2 / cost-kind / weight setting
/// a single DanceSearch optimizes. `seed` 0 means "derive from the base
/// options' seed and the sweep position" (so entries stay decorrelated but
/// the whole sweep is reproducible).
struct Scalarization {
  float lambda2 = 1.0F;
  CostKind cost_kind = CostKind::kEdap;
  accel::LinearCostWeights weights{};
  std::uint64_t seed = 0;
};

/// Convenience ladder: one Scalarization per lambda2 value.
[[nodiscard]] std::vector<Scalarization> lambda2_sweep(
    std::span<const float> lambda2_values, CostKind kind = CostKind::kEdap,
    const accel::LinearCostWeights& weights = {});

/// A swept design point: the scalarization that produced it, the outcome,
/// and where it landed relative to the constraints and the front.
struct FrontPoint {
  Scalarization scalarization;
  SearchOutcome outcome;
  bool feasible = true;   ///< against ParetoOptions::base.constraints
  bool on_front = false;  ///< member of the non-dominated subset
};

/// Result of one multi-objective run: every swept point (sweep order) plus
/// the dominance-sorted indices of the front.
struct ParetoResult {
  std::vector<FrontPoint> points;
  /// Indices into `points`, sorted by (error, latency, energy, area, index)
  /// ascending — the deterministic "dominance-sorted" order the front CSV
  /// and the CI smoke assert.
  std::vector<std::size_t> front;
};

/// The four minimization objectives of an outcome:
/// (error %, latency ms, energy mJ, area mm^2).
[[nodiscard]] std::array<double, 4> objectives(const SearchOutcome& o);

/// True when all four objectives are finite; non-finite outcomes never make
/// the front (and never dominate anything).
[[nodiscard]] bool finite_objectives(const SearchOutcome& o);

/// True iff `a` dominates `b`: <= on all four objectives, < on at least one.
/// Non-finite outcomes dominate nothing.
[[nodiscard]] bool dominates_outcome(const SearchOutcome& a,
                                     const SearchOutcome& b);

/// Non-dominated subset of `outcomes` with deterministic tie-breaking:
/// non-finite outcomes are skipped, exact-duplicate objective vectors keep
/// only the earliest index, and the returned indices are sorted by
/// (error, latency, energy, area, original index) ascending.
[[nodiscard]] std::vector<std::size_t> pareto_front_indices(
    std::span<const SearchOutcome> outcomes);

/// Options of the multi-objective mode. `base` carries everything a single
/// search needs (epochs, constraints, retrain budget, base seed); `sweep`
/// lists the scalarizations, one search each.
struct ParetoOptions {
  DanceOptions base;
  std::vector<Scalarization> sweep;
  /// Run sweep entries concurrently on the global pool (each entry's inner
  /// tensor loops then run inline — the pool's reentrancy contract). The
  /// result is bit-identical to the serial order because entries share no
  /// mutable state: the evaluator is pre-frozen (reads only) and every entry
  /// owns its RNG. Default from DANCE_SEARCH_PARALLEL_SWEEP (on).
  bool parallel;

  ParetoOptions();
};

/// One-run Pareto-front co-search: runs every scalarization in
/// `opts.sweep`, collects the outcomes, and computes the constrained
/// non-dominated front.
class ParetoCoSearch {
 public:
  ParetoCoSearch(const data::SyntheticTask& task,
                 const arch::CostProvider& cost_provider,
                 evalnet::Evaluator& evaluator,
                 const nas::SuperNetConfig& net_config, ParetoOptions opts);

  /// Throws std::invalid_argument on an empty sweep.
  [[nodiscard]] ParetoResult run();

 private:
  const data::SyntheticTask& task_;
  const arch::CostProvider& cost_provider_;
  evalnet::Evaluator& evaluator_;
  nas::SuperNetConfig net_config_;
  ParetoOptions opts_;
};

/// Writes the swept points to CSV: front rows first in dominance-sorted
/// order (series "front"), then the remaining points in sweep order
/// ("dominated" / "infeasible"). Columns:
///   series,lambda2,cost_kind,error_pct,latency_ms,energy_mj,area_mm2,edap,
///   feasible,on_front
void write_front_csv(const std::string& path, const ParetoResult& result);

/// Constrained exhaustive hardware generation — the oracle the penalized
/// arg-min is validated against: evaluate every configuration, keep the
/// feasible ones, and return the base-cost arg-min among them (earliest
/// index on ties). When nothing is feasible, returns the least-violating
/// configuration (ties again to the earliest index).
[[nodiscard]] hwgen::HwSearchResult constrained_optimal(
    const arch::CostProvider& provider, const arch::Architecture& a,
    const accel::HwCostFn& base_cost, const ConstraintSpec& spec);

/// Verifies a ParetoResult against the exact cost provider: every front
/// point's hardware must be non-dominated in (latency, energy, area) among
/// the feasible configurations of its own architecture, and the front
/// itself must be mutually non-dominating. Returns an empty string on
/// success, else a description of the first violation.
[[nodiscard]] std::string verify_front(const ParetoResult& result,
                                       const arch::CostProvider& provider,
                                       const ConstraintSpec& spec);

// ---------------------------------------------------------------------------
// History-penalty exploration (VLSIGR's negotiated-congestion `he` term, in
// search form): every restart records the (arch, HW) region it converged
// into; revisiting a region costs more on the next restart, forcing diverse
// designs without giving up on quality. Compared against plain multi-seed
// restarts in bench_fig5_pareto.
// ---------------------------------------------------------------------------

/// Per-(slot, op) visit counts over the architecture one-hot encoding.
class ArchHistory {
 public:
  explicit ArchHistory(const arch::ArchSpace& space);

  /// Bump the visit count of every (slot, op) the architecture uses.
  void record(const arch::Architecture& a);

  [[nodiscard]] int visits(int slot, int op) const;

  /// he-style penalty row over the one-hot encoding: pow(visits, exponent),
  /// 0 for unvisited pairs. Sized for DanceOptions::arch_history_penalty.
  [[nodiscard]] std::vector<float> penalty_encoding(double exponent) const;

 private:
  int slots_ = 0;
  std::vector<int> he_;  ///< [slot * kNumCandidateOps + op]
};

/// Per-configuration visit counts over the hardware space. record() bumps a
/// ±1 neighborhood region in (PE_X, PE_Y, RF) choice space (same dataflow),
/// so "the same region" means near-identical accelerators, not only the
/// exact configuration.
class HwHistory {
 public:
  explicit HwHistory(const hwgen::HwSearchSpace& space);

  void record(const accel::AcceleratorConfig& c);

  [[nodiscard]] int visits(const accel::AcceleratorConfig& c) const;

  /// Multiplicative penalty factor for a configuration:
  /// 1 + scale * pow(visits, exponent).
  [[nodiscard]] double penalty_factor(std::size_t config_index, double scale,
                                      double exponent) const;

 private:
  const hwgen::HwSearchSpace& space_;
  std::vector<int> he_;  ///< [config_index]
};

/// Options of the restart explorer. With `history` false this degrades to
/// plain multi-seed restarts (the baseline the benches compare against).
struct RestartOptions {
  DanceOptions base;
  int restarts = 4;
  bool history = true;
  /// Weight of the <encoding, he> arch term and of the hardware region
  /// penalty. Default from DANCE_SEARCH_HISTORY_SCALE.
  double history_scale;
  /// Exponent on the visit counts (VLSIGR uses he^3.6/100; searches want a
  /// milder curve). Default from DANCE_SEARCH_HISTORY_EXPONENT.
  double history_exponent;
  /// Also raise the cost of revisited hardware regions when re-picking the
  /// post-search accelerator.
  bool penalize_hardware = true;
  /// Per-restart seed stride (restart r runs with base.seed + r * stride).
  std::uint64_t seed_stride = 7919;

  RestartOptions();
};

/// Result of a restart run, plus the diversity measures the Table-3-style
/// comparison reports.
struct RestartResult {
  std::vector<SearchOutcome> outcomes;  ///< one per restart, restart order
  std::vector<std::size_t> front;       ///< pareto_front_indices(outcomes)
  int distinct_architectures = 0;
  int distinct_hardware = 0;
  /// Mean pairwise per-slot disagreement between restart architectures,
  /// in [0, 1]; 0 = every restart found the same network.
  double mean_pairwise_arch_distance = 0.0;
};

/// Run `opts.restarts` sequential searches, threading the history penalty
/// through them (when enabled). Deterministic for a fixed base seed: the
/// outcomes are bit-reproducible run to run (property-tested under
/// DANCE_PBT_SEED).
[[nodiscard]] RestartResult run_restarts(const data::SyntheticTask& task,
                                         const arch::CostProvider& provider,
                                         evalnet::Evaluator& evaluator,
                                         const nas::SuperNetConfig& net_config,
                                         const RestartOptions& opts);

}  // namespace dance::search
