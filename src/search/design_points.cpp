#include "search/design_points.h"

#include <cmath>
#include <stdexcept>

namespace dance::search {

namespace {

/// A sweep entry is usable only when every quantity the selection compares
/// is finite. NaN poisons comparisons silently (`NaN > x` and `NaN < x` are
/// both false), so a single non-finite outcome could win -A by being the
/// seed of the scan, or block -B by making its cost comparison always false.
bool selectable(const SearchOutcome& o, const accel::HwCostFn& cost_fn) {
  return std::isfinite(o.val_accuracy_pct) &&
         std::isfinite(o.metrics.latency_ms) &&
         std::isfinite(o.metrics.energy_mj) &&
         std::isfinite(o.metrics.area_mm2) && std::isfinite(cost_fn(o.metrics));
}

}  // namespace

DesignPoints select_design_points(std::span<const SearchOutcome> sweep,
                                  const accel::HwCostFn& cost_fn,
                                  double accuracy_budget_pct) {
  if (sweep.empty()) {
    throw std::invalid_argument("select_design_points: empty sweep");
  }
  // Skip-or-throw on non-finite inputs: outcomes with NaN/inf accuracy,
  // metrics or cost are excluded from both selections; when nothing finite
  // remains the sweep is unusable and we fail loudly instead of returning a
  // poisoned design point.
  const SearchOutcome* a = nullptr;
  for (const auto& o : sweep) {
    if (!selectable(o, cost_fn)) continue;
    if (a == nullptr || o.val_accuracy_pct > a->val_accuracy_pct) a = &o;
  }
  if (a == nullptr) {
    throw std::invalid_argument(
        "select_design_points: no outcome with finite accuracy/metrics/cost");
  }
  const SearchOutcome* b = a;
  for (const auto& o : sweep) {
    if (!selectable(o, cost_fn)) continue;
    if (o.val_accuracy_pct + accuracy_budget_pct >= a->val_accuracy_pct &&
        cost_fn(o.metrics) < cost_fn(b->metrics)) {
      b = &o;
    }
  }
  return DesignPoints{*a, *b};
}

}  // namespace dance::search
