#include "search/design_points.h"

#include <stdexcept>

namespace dance::search {

DesignPoints select_design_points(std::span<const SearchOutcome> sweep,
                                  const accel::HwCostFn& cost_fn,
                                  double accuracy_budget_pct) {
  if (sweep.empty()) {
    throw std::invalid_argument("select_design_points: empty sweep");
  }
  const SearchOutcome* a = &sweep.front();
  for (const auto& o : sweep) {
    if (o.val_accuracy_pct > a->val_accuracy_pct) a = &o;
  }
  const SearchOutcome* b = a;
  for (const auto& o : sweep) {
    if (o.val_accuracy_pct + accuracy_budget_pct >= a->val_accuracy_pct &&
        cost_fn(o.metrics) < cost_fn(b->metrics)) {
      b = &o;
    }
  }
  return DesignPoints{*a, *b};
}

}  // namespace dance::search
