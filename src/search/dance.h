#pragma once

#include "arch/cost_provider.h"
#include "data/synthetic.h"
#include "evalnet/evaluator.h"
#include "nas/supernet.h"
#include "nas/trainer.h"
#include "search/cost_term.h"
#include "search/outcome.h"
#include "search/warmup.h"

namespace dance::search {

/// How architecture-parameter gradients are formed.
enum class ArchUpdate {
  kGumbelSt,          ///< hard straight-through Gumbel gates over all paths
  kBinarizedTwoPath,  ///< ProxylessNAS binarized two-path sampling
};

/// Options of the DANCE differentiable co-exploration (§3.2).
struct DanceOptions {
  int search_epochs = 24;
  int batch_size = 128;
  ArchUpdate arch_update = ArchUpdate::kGumbelSt;
  /// Run the architecture step every N-th batch (weight steps every batch).
  /// 2 halves the search cost with little quality impact.
  int arch_update_period = 2;
  // Weight-update path (paper: SGD + Nesterov, cosine schedule, wd 4e-5).
  float weight_lr = 0.01F;
  float weight_momentum = 0.9F;
  float weight_decay = 4e-5F;  ///< lambda_1 of Eq. 1
  // Architecture-parameter path (Adam, as in ProxylessNAS).
  float arch_lr = 5e-3F;
  // Hardware cost term.
  CostKind cost_kind = CostKind::kEdap;
  accel::LinearCostWeights linear_weights{};
  float lambda2 = 1.0F;          ///< Eq. 1 hardware cost weight
  int warmup_epochs = 6;         ///< §3.4 warm-up before lambda2 ramps in
  float warmup_lambda2 = 0.0F;
  float gumbel_tau = 1.0F;
  // Hard constraints (docs/search.md): lowered into the arch loss as a
  // LambdaWarmup-ramped differentiable penalty, and into the post-search
  // exact hardware generation as a feasibility filter on the scalar cost.
  ConstraintSpec constraints{};
  float constraint_weight = 8.0F;    ///< penalty weight once fully ramped in
  int constraint_warmup_epochs = -1; ///< -1: follow warmup_epochs
  // History-penalty exploration (search/pareto.h, VLSIGR's negotiated-
  // congestion `he` in spirit): when non-null, `arch_history_penalty` must
  // have arch-encoding width and history_scale * <encoding, penalty> joins
  // the architecture loss, steering restarts away from already-visited
  // (slot, op) regions. The vector is borrowed and must outlive run().
  const std::vector<float>* arch_history_penalty = nullptr;
  float history_scale = 0.0F;
  nas::FixedTrainOptions retrain{};
  std::uint64_t seed = 42;
  bool verbose = false;
};

/// The DANCE search loop: alternating supernet weight updates (sampled
/// single path, cross-entropy) and architecture parameter updates through
/// Loss = CE + lambda1*||w|| + lambda2*Cost_HW, where Cost_HW flows through
/// the frozen differentiable evaluator. After the search a one-time exact
/// hardware generation is run and the derived network retrained from
/// scratch, exactly as in §4.3.
class DanceSearch {
 public:
  DanceSearch(const data::SyntheticTask& task, const arch::CostProvider& cost_table,
              evalnet::Evaluator& evaluator, const nas::SuperNetConfig& net_config,
              const DanceOptions& opts);

  [[nodiscard]] SearchOutcome run();

  /// Arch-parameter op distribution after the search (diagnostics).
  [[nodiscard]] const std::vector<std::vector<double>>& final_probs() const {
    return final_probs_;
  }

 private:
  const data::SyntheticTask& task_;
  const arch::CostProvider& cost_table_;
  evalnet::Evaluator& evaluator_;
  nas::SuperNetConfig net_config_;
  DanceOptions opts_;
  std::vector<std::vector<double>> final_probs_;
};

}  // namespace dance::search
