#include "search/baselines.h"

#include <chrono>

#include "nn/optim.h"

namespace dance::search {

namespace ops = tensor::ops;
using tensor::Tensor;
using tensor::Variable;

SearchOutcome run_baseline(const data::SyntheticTask& task,
                           const arch::CostProvider& cost_table,
                           const nas::SuperNetConfig& net_config,
                           const BaselineOptions& opts) {
  const auto t_start = std::chrono::steady_clock::now();
  util::Rng rng(opts.seed);
  nas::SuperNet supernet(net_config, rng);

  // Per-slot candidate MACs (in millions) as constant column vectors; the
  // expected-FLOPs penalty is gate . macs, which is differentiable in the
  // architecture parameters (the ProxylessNAS-style latency/FLOPs proxy).
  std::vector<Variable> macs_cols;
  if (opts.flops_weight > 0.0F) {
    const auto& space = cost_table.arch_space();
    for (int slot = 0; slot < space.num_searchable(); ++slot) {
      Tensor col({arch::kNumCandidateOps, 1});
      for (int op = 0; op < arch::kNumCandidateOps; ++op) {
        double macs = 0.0;
        for (const auto& shape : space.lower_choice(
                 slot, arch::kAllCandidateOps[static_cast<std::size_t>(op)])) {
          macs += static_cast<double>(shape.macs());
        }
        col.at(op, 0) = static_cast<float>(macs / 1e6);
      }
      macs_cols.emplace_back(std::move(col), /*requires_grad=*/false);
    }
  }

  nn::Sgd::Options sgd;
  sgd.lr = opts.weight_lr;
  sgd.momentum = opts.weight_momentum;
  sgd.nesterov = true;
  sgd.weight_decay = opts.weight_decay;
  sgd.max_grad_norm = 2.0F;
  nn::Sgd weight_opt(supernet.weight_parameters(), sgd);
  const nn::CosineSchedule weight_schedule(opts.weight_lr, opts.search_epochs);

  nn::Adam::Options adam;
  adam.lr = opts.arch_lr;
  nn::Adam arch_opt(supernet.arch_parameters(), adam);

  const int n = task.train.size();
  const int period = std::max(1, opts.arch_update_period);
  for (int epoch = 0; epoch < opts.search_epochs; ++epoch) {
    weight_opt.set_lr(weight_schedule.lr(epoch));
    const auto perm = rng.permutation(n);
    int batch_index = 0;
    for (int start = 0; start < n; start += opts.batch_size, ++batch_index) {
      const int stop = std::min(n, start + opts.batch_size);
      const std::vector<int> idx(perm.begin() + start, perm.begin() + stop);
      auto [bx, by] = task.train.batch(idx);
      const Variable x(std::move(bx));

      // Weight step on a sampled path.
      {
        arch::Architecture sampled;
        for (const auto& p : supernet.arch_probs()) {
          std::vector<float> w(p.begin(), p.end());
          sampled.push_back(arch::kAllCandidateOps[static_cast<std::size_t>(
              rng.categorical(w))]);
        }
        const Variable loss =
            ops::cross_entropy(supernet.forward_fixed(x, sampled), by);
        weight_opt.zero_grad();
        for (auto& a : supernet.arch_parameters()) a.zero_grad();
        loss.backward();
        weight_opt.step();
      }

      // Architecture step: CE (+ optional expected-FLOPs penalty).
      if (batch_index % period == 0) {
        nas::Gates gates = supernet.sample_gates(opts.gumbel_tau, true, rng);
        Variable loss = ops::cross_entropy(supernet.forward(x, gates), by);
        if (opts.flops_weight > 0.0F) {
          Variable penalty;
          for (std::size_t b = 0; b < gates.size(); ++b) {
            const Variable term = ops::matmul(gates[b], macs_cols[b]);
            penalty = b == 0 ? term : ops::add(penalty, term);
          }
          loss = ops::add(
              loss, ops::sum_all(ops::scale(penalty, opts.flops_weight)));
        }
        arch_opt.zero_grad();
        for (auto& w : supernet.weight_parameters()) w.zero_grad();
        loss.backward();
        arch_opt.step();
      }
    }
  }

  SearchOutcome outcome;
  outcome.architecture = supernet.derive();
  const auto t_end = std::chrono::steady_clock::now();
  outcome.search_seconds = std::chrono::duration<double>(t_end - t_start).count();
  outcome.trained_candidates = 1;

  // Post-hoc hardware generation ("+ HW" in Table 2).
  const hwgen::HwSearchResult hw = cost_table.optimal(
      outcome.architecture, make_cost_fn(opts.cost_kind, opts.linear_weights));
  outcome.hardware = hw.config;
  outcome.metrics = hw.metrics;

  util::Rng retrain_rng(opts.seed + 1);
  nas::FixedNet fixed(net_config, outcome.architecture, retrain_rng);
  const nas::FixedTrainResult r = nas::train_fixed_net(fixed, task, opts.retrain);
  outcome.val_accuracy_pct = r.val_accuracy_pct;
  return outcome;
}

}  // namespace dance::search
