#pragma once

#include <vector>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "arch/space.h"
#include "hwgen/exhaustive.h"
#include "hwgen/search_space.h"

namespace dance::arch {

/// Precomputed per-(slot, candidate-op, hardware-config) layer costs.
///
/// The exhaustive hardware generation tool evaluates every configuration in
/// H for every candidate network; since a backbone position contributes the
/// same convolution shapes for a given op regardless of the rest of the
/// architecture, the (slot, op, config) costs can be tabulated once. An
/// architecture's cost under any config is then a 9-term table sum, which
/// makes exhaustive ground-truth generation for the evaluator training set
/// tractable (DESIGN.md §7). The results are bit-identical to running the
/// cost model directly.
class CostTable {
 public:
  CostTable(const ArchSpace& arch_space, const hwgen::HwSearchSpace& hw_space,
            const accel::CostModel& model);

  /// Network metrics of `a` on configuration `config_index`.
  [[nodiscard]] accel::CostMetrics metrics(std::size_t config_index,
                                           const Architecture& a) const;

  /// Metrics of `a` on every configuration, in space order.
  [[nodiscard]] std::vector<accel::CostMetrics> evaluate_all(
      const Architecture& a) const;

  /// Exact hardware generation (arg-min over the whole space) via the table.
  [[nodiscard]] hwgen::HwSearchResult optimal(const Architecture& a,
                                              const accel::HwCostFn& cost_fn) const;

  /// Expected metrics under per-slot op probability distributions
  /// `probs[slot][op]` for a fixed config — the differentiable relaxation's
  /// exact counterpart, used to sanity-check the evaluator network.
  [[nodiscard]] accel::CostMetrics expected_metrics(
      std::size_t config_index,
      const std::vector<std::vector<double>>& probs) const;

  [[nodiscard]] const hwgen::HwSearchSpace& hw_space() const { return hw_space_; }
  [[nodiscard]] const ArchSpace& arch_space() const { return arch_space_; }

 private:
  [[nodiscard]] std::size_t slot_offset(int slot, int op) const {
    return (static_cast<std::size_t>(slot) * kNumCandidateOps +
            static_cast<std::size_t>(op)) *
           num_configs_;
  }

  const ArchSpace& arch_space_;
  const hwgen::HwSearchSpace& hw_space_;
  const accel::CostModel& model_;
  std::size_t num_configs_;
  std::vector<double> fixed_cycles_;   ///< [config]
  std::vector<double> fixed_energy_;   ///< [config] (pJ)
  std::vector<double> choice_cycles_;  ///< [slot][op][config]
  std::vector<double> choice_energy_;  ///< [slot][op][config] (pJ)
  std::vector<double> area_;           ///< [config] (mm^2)
};

}  // namespace dance::arch
