#pragma once

#include <vector>

#include "arch/cost_provider.h"

namespace dance::arch {

/// Precomputed per-(slot, candidate-op, hardware-config) layer costs.
///
/// The exhaustive hardware generation tool evaluates every configuration in
/// H for every candidate network; since a backbone position contributes the
/// same convolution shapes for a given op regardless of the rest of the
/// architecture, the (slot, op, config) costs can be tabulated once. An
/// architecture's cost under any config is then a 9-term table sum, which
/// makes exhaustive ground-truth generation for the evaluator training set
/// tractable (DESIGN.md §7). The results are bit-identical to running the
/// cost model directly.
///
/// Queries are inherited from TableCostProvider; a CostTable saved with
/// `save_cost_table` and reloaded as an `MmapCostTable` answers
/// bit-identically (see src/arch/cost_artifact.h).
class CostTable : public TableCostProvider {
 public:
  /// Builds the table by sweeping the whole (slot, op, config) space over
  /// `runtime::global_pool()`. Holds references to `arch_space` and
  /// `hw_space` (not `model`, which is only consulted during the build);
  /// both must outlive the table.
  CostTable(const ArchSpace& arch_space, const hwgen::HwSearchSpace& hw_space,
            const accel::CostModel& model);

  // Moving is safe (the vectors keep their heap buffers, so the inherited
  // view_ pointers stay valid); copying would alias the source's storage.
  CostTable(CostTable&&) = default;
  CostTable(const CostTable&) = delete;
  CostTable& operator=(const CostTable&) = delete;
  CostTable& operator=(CostTable&&) = delete;

  [[nodiscard]] const hwgen::HwSearchSpace& hw_space() const override {
    return hw_space_;
  }
  [[nodiscard]] const ArchSpace& arch_space() const override {
    return arch_space_;
  }

 private:
  const ArchSpace& arch_space_;
  const hwgen::HwSearchSpace& hw_space_;
  double clock_ghz_;
  std::vector<double> fixed_cycles_;   ///< [config]
  std::vector<double> fixed_energy_;   ///< [config] (pJ)
  std::vector<double> choice_cycles_;  ///< [slot][op][config]
  std::vector<double> choice_energy_;  ///< [slot][op][config] (pJ)
  std::vector<double> area_;           ///< [config] (mm^2)
};

/// Factory form of the CostTable constructor — the construction-side
/// counterpart of `arch::load_cost_table` (cost_artifact.h), so call sites
/// read symmetrically whether a table is built from the model or loaded
/// from a compiled artifact.
[[nodiscard]] CostTable build_cost_table(const ArchSpace& arch_space,
                                         const hwgen::HwSearchSpace& hw_space,
                                         const accel::CostModel& model);

}  // namespace dance::arch
