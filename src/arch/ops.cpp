#include "arch/ops.h"

namespace dance::arch {

std::string to_string(CandidateOp op) {
  switch (op) {
    case CandidateOp::kMbConv3x3E3: return "MBConv3x3_e3";
    case CandidateOp::kMbConv3x3E6: return "MBConv3x3_e6";
    case CandidateOp::kMbConv5x5E3: return "MBConv5x5_e3";
    case CandidateOp::kMbConv5x5E6: return "MBConv5x5_e6";
    case CandidateOp::kMbConv7x7E3: return "MBConv7x7_e3";
    case CandidateOp::kMbConv7x7E6: return "MBConv7x7_e6";
    case CandidateOp::kZero: return "Zero";
  }
  return "??";
}

}  // namespace dance::arch
