#include "arch/cost_artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "obs/registry.h"
#include "util/fs.h"

namespace dance::arch {

namespace {

// DCTB-v1: fixed 64-byte header, five flat f64 arrays, trailing FNV-1a
// checksum over everything before it. Byte offsets (little-endian):
//
//    0  char[4]  magic "DCTB"
//    4  u32      version (1)
//    8  u32      num_slots
//   12  u32      num_ops (kNumCandidateOps)
//   16  u64      num_configs
//   24  i32[5]   HwSearchSpace::Options {pe_min, pe_max, rf_min, rf_max,
//                rf_step} — enough to reconstruct H at load time
//   44  u32      arch encoding width (slot/op sanity cross-check)
//   48  f64      clock_ghz
//   56  u64      payload_bytes
//   64  f64[]    fixed_cycles[C], fixed_energy[C], area[C],
//                choice_cycles[S*O*C], choice_energy[S*O*C]
// tail  u64      FNV-1a(bytes[0 .. 64+payload_bytes))
constexpr char kMagic[4] = {'D', 'C', 'T', 'B'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kChecksumBytes = 8;

/// Same FNV-1a as the DSNP cache snapshots (src/cluster/snapshot.cpp).
std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void put_at(std::string& bytes, std::size_t off, T v) {
  std::memcpy(bytes.data() + off, &v, sizeof(v));
}

template <typename T>
T get_at(const char* data, std::size_t off) {
  T v;
  std::memcpy(&v, data + off, sizeof(v));
  return v;
}

}  // namespace

ArtifactError::ArtifactError(const std::string& message, std::string path,
                             std::size_t offset,
                             std::uint64_t expected_checksum,
                             std::uint64_t actual_checksum)
    : std::runtime_error("cost-table artifact " + path + ": " + message +
                         " (offset " + std::to_string(offset) + ")"),
      path_(std::move(path)),
      offset_(offset),
      expected_(expected_checksum),
      actual_(actual_checksum) {}

std::uint64_t save_cost_table(const TableCostProvider& table,
                              const std::string& path) {
  const auto& view = table.view_;
  const auto slots = static_cast<std::size_t>(view.slots);
  const std::size_t configs = view.num_configs;
  const std::size_t choice_count = slots * kNumCandidateOps * configs;
  const std::size_t payload_bytes =
      (3 * configs + 2 * choice_count) * sizeof(double);

  std::string bytes(kHeaderBytes + payload_bytes + kChecksumBytes, '\0');
  std::memcpy(bytes.data(), kMagic, sizeof(kMagic));
  put_at<std::uint32_t>(bytes, 4, kVersion);
  put_at<std::uint32_t>(bytes, 8, static_cast<std::uint32_t>(view.slots));
  put_at<std::uint32_t>(bytes, 12, kNumCandidateOps);
  put_at<std::uint64_t>(bytes, 16, configs);
  const hwgen::HwSearchSpace::Options& opts = table.hw_space().options();
  put_at<std::int32_t>(bytes, 24, opts.pe_min);
  put_at<std::int32_t>(bytes, 28, opts.pe_max);
  put_at<std::int32_t>(bytes, 32, opts.rf_min);
  put_at<std::int32_t>(bytes, 36, opts.rf_max);
  put_at<std::int32_t>(bytes, 40, opts.rf_step);
  put_at<std::uint32_t>(
      bytes, 44, static_cast<std::uint32_t>(table.arch_space().encoding_width()));
  put_at<double>(bytes, 48, view.clock_ghz);
  put_at<std::uint64_t>(bytes, 56, payload_bytes);

  char* payload = bytes.data() + kHeaderBytes;
  const auto copy_array = [&payload](const double* src, std::size_t n) {
    std::memcpy(payload, src, n * sizeof(double));
    payload += n * sizeof(double);
  };
  copy_array(view.fixed_cycles, configs);
  copy_array(view.fixed_energy, configs);
  copy_array(view.area, configs);
  copy_array(view.choice_cycles, choice_count);
  copy_array(view.choice_energy, choice_count);

  const std::uint64_t checksum =
      fnv1a(bytes.data(), kHeaderBytes + payload_bytes);
  put_at<std::uint64_t>(bytes, kHeaderBytes + payload_bytes, checksum);

  try {
    util::atomic_write_file(path, bytes);
  } catch (const std::runtime_error& e) {
    throw ArtifactError(std::string("write failed: ") + e.what(), path);
  }
  obs::Registry::global().counter("costtable.saves").inc();
  return checksum;
}

MmapCostTable::Mapping::~Mapping() {
  if (addr != nullptr) ::munmap(addr, len);
}

MmapCostTable::MmapCostTable(std::string path, const ArchSpace& arch_space)
    : path_(std::move(path)), arch_space_(arch_space) {
  const auto fail = [this](const std::string& message, std::size_t offset = 0,
                           std::uint64_t expected = 0,
                           std::uint64_t actual = 0) -> ArtifactError {
    obs::Registry::global().counter("costtable.load_errors").inc();
    return ArtifactError(message, path_, offset, expected, actual);
  };

  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    throw fail(std::string("open failed: ") + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw fail(std::string("fstat failed: ") + std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes + kChecksumBytes) {
    ::close(fd);
    throw fail("file truncated before header", size);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (addr == MAP_FAILED) {
    throw fail(std::string("mmap failed: ") + std::strerror(errno));
  }
  map_.addr = addr;  // RAII from here: any throw below unmaps
  map_.len = size;
  const char* data = static_cast<const char*>(addr);

  // Checksum first (DSNP discipline): nothing else is trusted, or even
  // interpreted, until the whole image verifies.
  const auto stored = get_at<std::uint64_t>(data, size - kChecksumBytes);
  const std::uint64_t actual = fnv1a(data, size - kChecksumBytes);
  if (stored != actual) {
    throw fail("checksum mismatch", size - kChecksumBytes, stored, actual);
  }

  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw fail("bad magic (not a DCTB file)", 0);
  }
  if (get_at<std::uint32_t>(data, 4) != kVersion) {
    throw fail("unsupported version " +
                   std::to_string(get_at<std::uint32_t>(data, 4)),
               4);
  }
  const auto num_slots = get_at<std::uint32_t>(data, 8);
  const auto num_ops = get_at<std::uint32_t>(data, 12);
  const auto num_configs = get_at<std::uint64_t>(data, 16);
  if (num_ops != static_cast<std::uint32_t>(kNumCandidateOps)) {
    throw fail("candidate-op count mismatch", 12);
  }
  if (num_slots != static_cast<std::uint32_t>(arch_space_.num_searchable())) {
    throw fail("slot count mismatch (table built for another backbone)", 8);
  }
  hwgen::HwSearchSpace::Options opts;
  opts.pe_min = get_at<std::int32_t>(data, 24);
  opts.pe_max = get_at<std::int32_t>(data, 28);
  opts.rf_min = get_at<std::int32_t>(data, 32);
  opts.rf_max = get_at<std::int32_t>(data, 36);
  opts.rf_step = get_at<std::int32_t>(data, 40);
  if (opts.pe_min <= 0 || opts.pe_max < opts.pe_min || opts.rf_min <= 0 ||
      opts.rf_max < opts.rf_min || opts.rf_step <= 0) {
    throw fail("invalid hardware-space options", 24);
  }
  hw_space_ = hwgen::HwSearchSpace(opts);
  if (num_configs != hw_space_.size()) {
    throw fail("config count disagrees with hardware-space options", 16);
  }
  const auto encoding_width = get_at<std::uint32_t>(data, 44);
  if (encoding_width !=
      static_cast<std::uint32_t>(arch_space_.encoding_width())) {
    throw fail("architecture encoding width mismatch", 44);
  }
  const double clock_ghz = get_at<double>(data, 48);
  if (!(clock_ghz > 0.0)) {
    throw fail("non-positive clock frequency", 48);
  }
  const auto payload_bytes = get_at<std::uint64_t>(data, 56);
  const std::size_t choice_count =
      static_cast<std::size_t>(num_slots) * kNumCandidateOps * num_configs;
  const std::size_t expected_payload =
      (3 * static_cast<std::size_t>(num_configs) + 2 * choice_count) *
      sizeof(double);
  if (payload_bytes != expected_payload) {
    throw fail("payload size disagrees with table dimensions", 56);
  }
  if (size != kHeaderBytes + payload_bytes + kChecksumBytes) {
    throw fail("file size disagrees with payload", kHeaderBytes + payload_bytes);
  }

  const auto* payload =
      reinterpret_cast<const double*>(data + kHeaderBytes);
  view_.fixed_cycles = payload;
  view_.fixed_energy = payload + num_configs;
  view_.area = payload + 2 * num_configs;
  view_.choice_cycles = payload + 3 * num_configs;
  view_.choice_energy = payload + 3 * num_configs + choice_count;
  view_.num_configs = num_configs;
  view_.slots = static_cast<int>(num_slots);
  view_.clock_ghz = clock_ghz;
  checksum_ = stored;
  obs::Registry::global().counter("costtable.loads").inc();
  obs::Registry::global().counter("costtable.mapped_bytes").inc(size);
}

MmapCostTable::~MmapCostTable() = default;

std::unique_ptr<MmapCostTable> load_cost_table(const std::string& path,
                                               const ArchSpace& arch_space) {
  return std::make_unique<MmapCostTable>(path, arch_space);
}

}  // namespace dance::arch
