#pragma once

#include <array>
#include <string>

namespace dance::arch {

/// Candidate operations of a searchable layer (§4.1): six mobile inverted
/// bottleneck variants plus Zero. When Zero is chosen only the skip
/// connection remains and the layer disappears from the network.
enum class CandidateOp {
  kMbConv3x3E3,
  kMbConv3x3E6,
  kMbConv5x5E3,
  kMbConv5x5E6,
  kMbConv7x7E3,
  kMbConv7x7E6,
  kZero,
};

inline constexpr int kNumCandidateOps = 7;

inline constexpr std::array<CandidateOp, kNumCandidateOps> kAllCandidateOps = {
    CandidateOp::kMbConv3x3E3, CandidateOp::kMbConv3x3E6,
    CandidateOp::kMbConv5x5E3, CandidateOp::kMbConv5x5E6,
    CandidateOp::kMbConv7x7E3, CandidateOp::kMbConv7x7E6,
    CandidateOp::kZero};

[[nodiscard]] constexpr bool is_zero(CandidateOp op) {
  return op == CandidateOp::kZero;
}

/// Depthwise kernel size (R = S); 0 for Zero.
[[nodiscard]] constexpr int kernel_size(CandidateOp op) {
  switch (op) {
    case CandidateOp::kMbConv3x3E3:
    case CandidateOp::kMbConv3x3E6: return 3;
    case CandidateOp::kMbConv5x5E3:
    case CandidateOp::kMbConv5x5E6: return 5;
    case CandidateOp::kMbConv7x7E3:
    case CandidateOp::kMbConv7x7E6: return 7;
    case CandidateOp::kZero: return 0;
  }
  return 0;
}

/// Bottleneck expansion ratio; 0 for Zero.
[[nodiscard]] constexpr int expand_ratio(CandidateOp op) {
  switch (op) {
    case CandidateOp::kMbConv3x3E3:
    case CandidateOp::kMbConv5x5E3:
    case CandidateOp::kMbConv7x7E3: return 3;
    case CandidateOp::kMbConv3x3E6:
    case CandidateOp::kMbConv5x5E6:
    case CandidateOp::kMbConv7x7E6: return 6;
    case CandidateOp::kZero: return 0;
  }
  return 0;
}

[[nodiscard]] std::string to_string(CandidateOp op);

}  // namespace dance::arch
