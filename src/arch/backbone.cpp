#include "arch/backbone.h"

#include <stdexcept>

namespace dance::arch {

namespace {

/// Shared builder: stem conv + fixed MBConv, three searchable stages of three
/// layers (first layer of each stage changes channels with stride 2), fixed
/// MBConv + plain 1x1 head.
BackboneSpec build(const std::string& name, int resolution, int num_classes,
                   int stem_ch, int early_ch, const std::vector<int>& stage_ch,
                   int tail_ch, int head_ch) {
  if (stage_ch.size() != 3) throw std::invalid_argument("build: need 3 stages");
  BackboneSpec spec;
  spec.name = name;
  spec.input_resolution = resolution;
  spec.num_classes = num_classes;

  int h = resolution;
  int ch = 3;

  auto push = [&](LayerSpec l) {
    l.in_h = h;
    l.in_w = h;
    l.in_channels = ch;
    spec.layers.push_back(l);
    h = (h + l.stride - 1) / l.stride;
    ch = l.out_channels;
  };

  // L0: plain 3x3 stem convolution.
  {
    LayerSpec l;
    l.out_channels = stem_ch;
    l.stride = (resolution > 64) ? 2 : 1;  // ImageNet stems downsample
    l.plain_conv = true;
    l.fixed_kernel = 3;
    push(l);
  }
  // L1: fixed MBConv k3 e1.
  {
    LayerSpec l;
    l.out_channels = early_ch;
    l.fixed_kernel = 3;
    l.fixed_expand = 1;
    push(l);
  }
  // L2..L10: three searchable stages of three layers.
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < 3; ++i) {
      LayerSpec l;
      l.out_channels = stage_ch[static_cast<std::size_t>(stage)];
      l.stride = (i == 0) ? 2 : 1;
      l.searchable = true;
      push(l);
    }
  }
  // L11: fixed MBConv k3 e6.
  {
    LayerSpec l;
    l.out_channels = tail_ch;
    l.fixed_kernel = 3;
    l.fixed_expand = 6;
    push(l);
  }
  // L12: plain 1x1 feature-mixing head.
  {
    LayerSpec l;
    l.out_channels = head_ch;
    l.plain_conv = true;
    l.fixed_kernel = 1;
    push(l);
  }
  return spec;
}

}  // namespace

BackboneSpec cifar10_backbone() {
  return build("cifar10", /*resolution=*/32, /*num_classes=*/10,
               /*stem_ch=*/32, /*early_ch=*/16, /*stage_ch=*/{24, 40, 80},
               /*tail_ch=*/96, /*head_ch=*/320);
}

BackboneSpec imagenet_backbone() {
  return build("imagenet", /*resolution=*/224, /*num_classes=*/1000,
               /*stem_ch=*/32, /*early_ch=*/16, /*stage_ch=*/{32, 64, 128},
               /*tail_ch=*/192, /*head_ch=*/960);
}

}  // namespace dance::arch
