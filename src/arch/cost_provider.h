#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/cost_function.h"
#include "accel/cost_model.h"
#include "arch/space.h"
#include "hwgen/exhaustive.h"
#include "hwgen/search_space.h"

namespace dance::arch {

/// Abstract source of precomputed per-(slot, op, config) network costs.
///
/// Everything downstream of exhaustive ground truth — `serve::ExactBackend`,
/// the evaluator-dataset generator, the search baselines — programs against
/// this interface, so an in-memory `CostTable` (built from the analytical
/// model at startup) and an `MmapCostTable` (a compiled DCTB-v1 artifact
/// mapped read-only from disk) are interchangeable. Both answer
/// bit-identically for the same underlying table data.
class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Network metrics of `a` on configuration `config_index`.
  [[nodiscard]] virtual accel::CostMetrics metrics(
      std::size_t config_index, const Architecture& a) const = 0;

  /// Metrics of `a` on every configuration, in space order.
  [[nodiscard]] virtual std::vector<accel::CostMetrics> evaluate_all(
      const Architecture& a) const = 0;

  /// Exact hardware generation (arg-min over the whole space, Eq. 4).
  [[nodiscard]] virtual hwgen::HwSearchResult optimal(
      const Architecture& a, const accel::HwCostFn& cost_fn) const = 0;

  /// Expected metrics under per-slot op probability distributions
  /// `probs[slot][op]` for a fixed config.
  [[nodiscard]] virtual accel::CostMetrics expected_metrics(
      std::size_t config_index,
      const std::vector<std::vector<double>>& probs) const = 0;

  [[nodiscard]] virtual const hwgen::HwSearchSpace& hw_space() const = 0;
  [[nodiscard]] virtual const ArchSpace& arch_space() const = 0;
};

/// Shared query implementation over five flat per-config arrays. Derived
/// classes own (or map) the storage and point `view_` at it; every query
/// method reads only through the view, which is what guarantees a
/// `CostTable` and an `MmapCostTable` over the same bytes answer
/// bit-identically — they literally execute the same loads and arithmetic.
class TableCostProvider : public CostProvider {
 public:
  [[nodiscard]] accel::CostMetrics metrics(std::size_t config_index,
                                           const Architecture& a) const override;
  [[nodiscard]] std::vector<accel::CostMetrics> evaluate_all(
      const Architecture& a) const override;
  [[nodiscard]] hwgen::HwSearchResult optimal(
      const Architecture& a, const accel::HwCostFn& cost_fn) const override;
  [[nodiscard]] accel::CostMetrics expected_metrics(
      std::size_t config_index,
      const std::vector<std::vector<double>>& probs) const override;

 protected:
  /// Borrowed pointers into the derived class's storage. Layout:
  /// fixed_cycles/fixed_energy/area are [config]; choice_cycles and
  /// choice_energy are [slot][op][config] flattened via slot_offset().
  struct View {
    const double* fixed_cycles = nullptr;
    const double* fixed_energy = nullptr;  ///< pJ
    const double* choice_cycles = nullptr;
    const double* choice_energy = nullptr;  ///< pJ
    const double* area = nullptr;           ///< mm^2
    std::size_t num_configs = 0;
    int slots = 0;
    double clock_ghz = 1.0;
  };

  [[nodiscard]] std::size_t slot_offset(int slot, int op) const {
    return (static_cast<std::size_t>(slot) * kNumCandidateOps +
            static_cast<std::size_t>(op)) *
           view_.num_configs;
  }

  View view_{};

  friend std::uint64_t save_cost_table(const TableCostProvider& table,
                                       const std::string& path);
};

}  // namespace dance::arch
