#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "arch/cost_provider.h"

namespace dance::arch {

/// Typed diagnostic for a cost-table artifact that failed to save, load or
/// verify. Carries where in the file the parse gave up and — for checksum
/// failures — both sides of the mismatch, so callers can print an
/// actionable message instead of a bare "bad file".
class ArtifactError : public std::runtime_error {
 public:
  ArtifactError(const std::string& message, std::string path,
                std::size_t offset = 0, std::uint64_t expected_checksum = 0,
                std::uint64_t actual_checksum = 0);

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Byte offset at which validation failed (0 when not applicable).
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::uint64_t expected_checksum() const { return expected_; }
  [[nodiscard]] std::uint64_t actual_checksum() const { return actual_; }

 private:
  std::string path_;
  std::size_t offset_ = 0;
  std::uint64_t expected_ = 0;
  std::uint64_t actual_ = 0;
};

/// Compiles a provider's full (slot, op, config) table into a DCTB-v1 file
/// (see docs/cost_table.md for the byte layout): fixed 64-byte header
/// carrying the table dimensions, the HwSearchSpace::Options needed to
/// reconstruct H, the ArchSpace encoding width and the clock, followed by
/// the five flat f64 arrays and a trailing FNV-1a checksum over everything
/// before it. Written via util::atomic_write_file (tmp + rename), so a
/// crash mid-save never leaves a torn file. Returns the checksum.
std::uint64_t save_cost_table(const TableCostProvider& table,
                              const std::string& path);

/// A compiled cost table mapped read-only from disk. The file is verified
/// checksum-first and parsed fully before the first query (DSNP
/// discipline); any defect — truncation, bit flips anywhere, a table built
/// for a different architecture space — throws ArtifactError from the
/// constructor and nothing is ever served from a bad mapping. Pages are
/// MAP_SHARED, so N processes mapping one artifact share one physical copy
/// and pay zero per-process build time.
class MmapCostTable : public TableCostProvider {
 public:
  /// `arch_space` is the caller's network space (the backbone is not
  /// serialized); the artifact's slot count and encoding width must match.
  MmapCostTable(std::string path, const ArchSpace& arch_space);
  ~MmapCostTable() override;

  MmapCostTable(const MmapCostTable&) = delete;
  MmapCostTable& operator=(const MmapCostTable&) = delete;

  [[nodiscard]] const hwgen::HwSearchSpace& hw_space() const override {
    return hw_space_;
  }
  [[nodiscard]] const ArchSpace& arch_space() const override {
    return arch_space_;
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  [[nodiscard]] std::size_t mapped_bytes() const { return map_.len; }

 private:
  struct Mapping {
    void* addr = nullptr;
    std::size_t len = 0;
    ~Mapping();
  };

  std::string path_;
  const ArchSpace& arch_space_;
  hwgen::HwSearchSpace hw_space_;
  Mapping map_;
  std::uint64_t checksum_ = 0;
};

/// Factory form of the MmapCostTable constructor, symmetric with
/// arch::build_cost_table. Throws ArtifactError on any defect.
[[nodiscard]] std::unique_ptr<MmapCostTable> load_cost_table(
    const std::string& path, const ArchSpace& arch_space);

}  // namespace dance::arch
