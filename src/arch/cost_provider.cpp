#include "arch/cost_provider.h"

#include <limits>
#include <stdexcept>

#include "runtime/profiler.h"
#include "runtime/thread_pool.h"

namespace dance::arch {

namespace {
/// Table lookups are cheap; batch plenty of configs per chunk.
constexpr long kTableGrain = 256;
}  // namespace

accel::CostMetrics TableCostProvider::metrics(std::size_t config_index,
                                              const Architecture& a) const {
  arch_space().validate(a);
  if (config_index >= view_.num_configs) {
    throw std::out_of_range("CostProvider::metrics: bad config index");
  }
  double cycles = view_.fixed_cycles[config_index];
  double energy = view_.fixed_energy[config_index];
  for (int slot = 0; slot < view_.slots; ++slot) {
    const int op = static_cast<int>(a[static_cast<std::size_t>(slot)]);
    cycles += view_.choice_cycles[slot_offset(slot, op) + config_index];
    energy += view_.choice_energy[slot_offset(slot, op) + config_index];
  }
  accel::CostMetrics m;
  m.latency_ms = cycles / (view_.clock_ghz * 1e6);
  m.energy_mj = energy * 1e-9;
  m.area_mm2 = view_.area[config_index];
  return m;
}

std::vector<accel::CostMetrics> TableCostProvider::evaluate_all(
    const Architecture& a) const {
  arch_space().validate(a);
  std::vector<accel::CostMetrics> out(view_.num_configs);
  runtime::global_pool().parallel_for(
      0, static_cast<long>(view_.num_configs), kTableGrain,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          out[ci] = metrics(ci, a);
        }
      });
  return out;
}

hwgen::HwSearchResult TableCostProvider::optimal(
    const Architecture& a, const accel::HwCostFn& cost_fn) const {
  DANCE_PROFILE_SCOPE("arch.cost_table.optimal");
  arch_space().validate(a);
  // Parallel cost fill (disjoint writes), serial arg-min: the first index at
  // the minimum wins, exactly like the historical serial scan.
  std::vector<double> costs(view_.num_configs);
  runtime::global_pool().parallel_for(
      0, static_cast<long>(view_.num_configs), kTableGrain,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          costs[ci] = cost_fn(metrics(ci, a));
        }
      });
  std::size_t best_index = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t ci = 0; ci < view_.num_configs; ++ci) {
    if (costs[ci] < best_cost) {
      best_cost = costs[ci];
      best_index = ci;
    }
  }
  return hwgen::HwSearchResult{hw_space().config_at(best_index),
                               metrics(best_index, a), best_cost};
}

accel::CostMetrics TableCostProvider::expected_metrics(
    std::size_t config_index,
    const std::vector<std::vector<double>>& probs) const {
  if (static_cast<int>(probs.size()) != view_.slots) {
    throw std::invalid_argument("CostProvider::expected_metrics: slot mismatch");
  }
  if (config_index >= view_.num_configs) {
    throw std::out_of_range("CostProvider::expected_metrics: bad config index");
  }
  double cycles = view_.fixed_cycles[config_index];
  double energy = view_.fixed_energy[config_index];
  for (int slot = 0; slot < view_.slots; ++slot) {
    const auto& p = probs[static_cast<std::size_t>(slot)];
    if (static_cast<int>(p.size()) != kNumCandidateOps) {
      throw std::invalid_argument("CostProvider::expected_metrics: op mismatch");
    }
    for (int op = 0; op < kNumCandidateOps; ++op) {
      cycles += p[static_cast<std::size_t>(op)] *
                view_.choice_cycles[slot_offset(slot, op) + config_index];
      energy += p[static_cast<std::size_t>(op)] *
                view_.choice_energy[slot_offset(slot, op) + config_index];
    }
  }
  accel::CostMetrics m;
  m.latency_ms = cycles / (view_.clock_ghz * 1e6);
  m.energy_mj = energy * 1e-9;
  m.area_mm2 = view_.area[config_index];
  return m;
}

}  // namespace dance::arch
