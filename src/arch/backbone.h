#pragma once

#include <string>
#include <vector>

#include "arch/ops.h"

namespace dance::arch {

/// One position of the 13-layer ProxylessNAS-style backbone (§4.1).
struct LayerSpec {
  int in_channels = 1;
  int out_channels = 1;
  int stride = 1;
  int in_h = 1;  ///< input feature-map height at this position
  int in_w = 1;  ///< input feature-map width at this position
  bool searchable = false;
  /// For fixed (non-searchable) positions only:
  bool plain_conv = false;  ///< a plain KxK conv instead of an MBConv block
  int fixed_kernel = 3;
  int fixed_expand = 1;
};

/// The network backbone: a fixed stem/tail plus 9 searchable middle layers
/// whose channel count rises every three layers.
struct BackboneSpec {
  std::string name;
  int input_resolution = 32;
  int num_classes = 10;
  int batch = 1;  ///< inference batch used for hardware evaluation
  std::vector<LayerSpec> layers;

  [[nodiscard]] int num_searchable() const {
    int n = 0;
    for (const auto& l : layers) n += l.searchable ? 1 : 0;
    return n;
  }

  /// Indices (into `layers`) of the searchable positions, in order.
  [[nodiscard]] std::vector<int> searchable_positions() const {
    std::vector<int> out;
    for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
      if (layers[static_cast<std::size_t>(i)].searchable) out.push_back(i);
    }
    return out;
  }
};

/// CIFAR-10 backbone: 32x32 input, 13 layers, 9 searchable, channels
/// {16 -> 24 -> 40 -> 80} rising every 3 searchable layers with stride-2
/// reductions at each rise.
[[nodiscard]] BackboneSpec cifar10_backbone();

/// ImageNet backbone: 224x224 input, same topology scaled up in width and
/// resolution (used for the Table 4 experiment).
[[nodiscard]] BackboneSpec imagenet_backbone();

}  // namespace dance::arch
