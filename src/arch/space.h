#pragma once

#include <cstdint>
#include <vector>

#include "accel/conv_shape.h"
#include "arch/backbone.h"
#include "util/rng.h"

namespace dance::arch {

/// A concrete architecture: one candidate op per searchable position.
using Architecture = std::vector<CandidateOp>;

/// The network architecture search space A: the backbone plus the per-layer
/// candidate choices, with helpers to sample, encode and lower architectures.
class ArchSpace {
 public:
  explicit ArchSpace(BackboneSpec spec);

  [[nodiscard]] const BackboneSpec& backbone() const { return spec_; }
  [[nodiscard]] int num_searchable() const { return num_searchable_; }

  /// Flattened one-hot width: num_searchable * kNumCandidateOps. This is the
  /// evaluator network's input encoding of an architecture.
  [[nodiscard]] int encoding_width() const {
    return num_searchable_ * kNumCandidateOps;
  }

  /// Uniform random architecture.
  [[nodiscard]] Architecture random(util::Rng& rng) const;

  /// Concatenated per-layer one-hot encoding.
  [[nodiscard]] std::vector<float> encode(const Architecture& a) const;

  /// Inverse of encode: per-layer argmax.
  [[nodiscard]] Architecture decode(const std::vector<float>& enc) const;

  /// Lower the architecture to the full list of convolution shapes seen by
  /// the accelerator (fixed stem/tail layers included; Zero layers vanish —
  /// their skip connection is an average-pool + channel-pad shortcut which
  /// is MAC-free).
  [[nodiscard]] std::vector<accel::ConvShape> lower(const Architecture& a) const;

  /// Convolution shapes of the candidate `op` at searchable slot `slot`
  /// (empty for Zero). Slot indexes the searchable layers 0..8, not the raw
  /// backbone position.
  [[nodiscard]] std::vector<accel::ConvShape> lower_choice(int slot,
                                                           CandidateOp op) const;

  /// Convolution shapes of the fixed (non-searchable) layers.
  [[nodiscard]] const std::vector<accel::ConvShape>& fixed_shapes() const {
    return fixed_shapes_;
  }

  /// Total multiply-accumulates of an architecture (used by the FLOPs
  /// penalty baseline; FLOPs = 2 * MACs).
  [[nodiscard]] std::int64_t macs(const Architecture& a) const;

  void validate(const Architecture& a) const;

 private:
  BackboneSpec spec_;
  int num_searchable_;
  std::vector<int> searchable_positions_;
  std::vector<accel::ConvShape> fixed_shapes_;
};

/// Lower one backbone layer occupied by `op` (MBConv expand/depthwise/project
/// triplet, plain conv, or nothing for Zero).
[[nodiscard]] std::vector<accel::ConvShape> lower_layer(const LayerSpec& layer,
                                                        int batch,
                                                        CandidateOp op);

/// Lower a fixed layer using its built-in kernel/expansion.
[[nodiscard]] std::vector<accel::ConvShape> lower_fixed_layer(
    const LayerSpec& layer, int batch);

}  // namespace dance::arch
