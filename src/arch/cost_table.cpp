#include "arch/cost_table.h"

#include <utility>

#include "obs/registry.h"
#include "runtime/profiler.h"
#include "runtime/thread_pool.h"

namespace dance::arch {

namespace {
/// Cost-model evaluation per config is expensive; small chunks balance well.
constexpr long kModelGrain = 8;
}  // namespace

CostTable::CostTable(const ArchSpace& arch_space,
                     const hwgen::HwSearchSpace& hw_space,
                     const accel::CostModel& model)
    : arch_space_(arch_space),
      hw_space_(hw_space),
      clock_ghz_(model.tech().clock_ghz) {
  const std::size_t num_configs = hw_space.size();
  const int slots = arch_space_.num_searchable();
  fixed_cycles_.assign(num_configs, 0.0);
  fixed_energy_.assign(num_configs, 0.0);
  area_.assign(num_configs, 0.0);
  choice_cycles_.assign(
      static_cast<std::size_t>(slots) * kNumCandidateOps * num_configs, 0.0);
  choice_energy_.assign(choice_cycles_.size(), 0.0);

  // Pre-lower every choice once and flatten all shapes — fixed layers first,
  // then each (slot, op) segment — into one contiguous batch, so each config
  // costs exactly one layer_cost_batch call. Per-segment sums accumulate in
  // the same per-shape order as the historical per-layer loops, so the table
  // is bit-identical to the old build.
  struct Segment {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<accel::ConvShape> all_shapes(arch_space_.fixed_shapes().begin(),
                                           arch_space_.fixed_shapes().end());
  const std::size_t fixed_count = all_shapes.size();
  std::vector<Segment> segments(static_cast<std::size_t>(slots) *
                                kNumCandidateOps);
  for (int slot = 0; slot < slots; ++slot) {
    for (int op = 0; op < kNumCandidateOps; ++op) {
      const auto shapes = arch_space_.lower_choice(
          slot, kAllCandidateOps[static_cast<std::size_t>(op)]);
      Segment& seg =
          segments[static_cast<std::size_t>(slot) * kNumCandidateOps +
                   static_cast<std::size_t>(op)];
      seg.begin = all_shapes.size();
      all_shapes.insert(all_shapes.end(), shapes.begin(), shapes.end());
      seg.end = all_shapes.size();
    }
  }

  // Wire the base-class view before the sweep: slot_offset() needs
  // num_configs, and the storage pointers are stable from here on (the
  // vectors never reallocate after assign()).
  view_.fixed_cycles = fixed_cycles_.data();
  view_.fixed_energy = fixed_energy_.data();
  view_.choice_cycles = choice_cycles_.data();
  view_.choice_energy = choice_energy_.data();
  view_.area = area_.data();
  view_.num_configs = num_configs;
  view_.slots = slots;
  view_.clock_ghz = clock_ghz_;

  // Every configuration fills its own column of the tables (disjoint writes)
  // and all per-config sums accumulate inside a single lane, so the table is
  // bit-identical to a serial build at any thread count.
  DANCE_PROFILE_SCOPE("arch.cost_table.build");
  runtime::global_pool().parallel_for(
      0, static_cast<long>(num_configs), kModelGrain, [&](long lo, long hi) {
        std::vector<accel::LayerCost> costs(all_shapes.size());
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          const accel::AcceleratorConfig config = hw_space_.config_at(ci);
          area_[ci] = model.area_mm2(config);
          model.layer_cost_batch(config, all_shapes, costs);
          for (std::size_t f = 0; f < fixed_count; ++f) {
            fixed_cycles_[ci] += costs[f].cycles;
            fixed_energy_[ci] += costs[f].energy_pj;
          }
          for (int slot = 0; slot < slots; ++slot) {
            for (int op = 0; op < kNumCandidateOps; ++op) {
              const Segment& seg =
                  segments[static_cast<std::size_t>(slot) * kNumCandidateOps +
                           static_cast<std::size_t>(op)];
              double cycles = 0.0;
              double energy = 0.0;
              for (std::size_t s = seg.begin; s < seg.end; ++s) {
                cycles += costs[s].cycles;
                energy += costs[s].energy_pj;
              }
              choice_cycles_[slot_offset(slot, op) + ci] = cycles;
              choice_energy_[slot_offset(slot, op) + ci] = energy;
            }
          }
        }
      });

  obs::Registry::global().counter("costtable.builds").inc();
}

CostTable build_cost_table(const ArchSpace& arch_space,
                           const hwgen::HwSearchSpace& hw_space,
                           const accel::CostModel& model) {
  return CostTable(arch_space, hw_space, model);
}

}  // namespace dance::arch
