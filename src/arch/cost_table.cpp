#include "arch/cost_table.h"

#include <limits>
#include <stdexcept>

#include "runtime/profiler.h"
#include "runtime/thread_pool.h"

namespace dance::arch {

namespace {
/// Table lookups are cheap; batch plenty of configs per chunk.
constexpr long kTableGrain = 256;
/// Cost-model evaluation per config is expensive; small chunks balance well.
constexpr long kModelGrain = 8;
}  // namespace

CostTable::CostTable(const ArchSpace& arch_space,
                     const hwgen::HwSearchSpace& hw_space,
                     const accel::CostModel& model)
    : arch_space_(arch_space),
      hw_space_(hw_space),
      model_(model),
      num_configs_(hw_space.size()) {
  const int slots = arch_space_.num_searchable();
  fixed_cycles_.assign(num_configs_, 0.0);
  fixed_energy_.assign(num_configs_, 0.0);
  area_.assign(num_configs_, 0.0);
  choice_cycles_.assign(static_cast<std::size_t>(slots) * kNumCandidateOps *
                            num_configs_,
                        0.0);
  choice_energy_.assign(choice_cycles_.size(), 0.0);

  // Pre-lower every choice once; the config loop is the hot one.
  std::vector<std::vector<std::vector<accel::ConvShape>>> choice_shapes(
      static_cast<std::size_t>(slots));
  for (int slot = 0; slot < slots; ++slot) {
    auto& per_op = choice_shapes[static_cast<std::size_t>(slot)];
    per_op.resize(kNumCandidateOps);
    for (int op = 0; op < kNumCandidateOps; ++op) {
      per_op[static_cast<std::size_t>(op)] = arch_space_.lower_choice(
          slot, kAllCandidateOps[static_cast<std::size_t>(op)]);
    }
  }

  // Every configuration fills its own column of the tables (disjoint writes)
  // and all per-config sums accumulate inside a single lane, so the table is
  // bit-identical to a serial build at any thread count.
  DANCE_PROFILE_SCOPE("arch.cost_table.build");
  runtime::global_pool().parallel_for(
      0, static_cast<long>(num_configs_), kModelGrain, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          const accel::AcceleratorConfig config = hw_space_.config_at(ci);
          area_[ci] = model_.area_mm2(config);
          for (const auto& shape : arch_space_.fixed_shapes()) {
            const accel::LayerCost lc = model_.layer_cost(config, shape);
            fixed_cycles_[ci] += lc.cycles;
            fixed_energy_[ci] += lc.energy_pj;
          }
          for (int slot = 0; slot < slots; ++slot) {
            for (int op = 0; op < kNumCandidateOps; ++op) {
              double cycles = 0.0;
              double energy = 0.0;
              for (const auto& shape : choice_shapes[static_cast<std::size_t>(
                       slot)][static_cast<std::size_t>(op)]) {
                const accel::LayerCost lc = model_.layer_cost(config, shape);
                cycles += lc.cycles;
                energy += lc.energy_pj;
              }
              choice_cycles_[slot_offset(slot, op) + ci] = cycles;
              choice_energy_[slot_offset(slot, op) + ci] = energy;
            }
          }
        }
      });
}

accel::CostMetrics CostTable::metrics(std::size_t config_index,
                                      const Architecture& a) const {
  arch_space_.validate(a);
  if (config_index >= num_configs_) {
    throw std::out_of_range("CostTable::metrics: bad config index");
  }
  double cycles = fixed_cycles_[config_index];
  double energy = fixed_energy_[config_index];
  for (int slot = 0; slot < arch_space_.num_searchable(); ++slot) {
    const int op = static_cast<int>(a[static_cast<std::size_t>(slot)]);
    cycles += choice_cycles_[slot_offset(slot, op) + config_index];
    energy += choice_energy_[slot_offset(slot, op) + config_index];
  }
  accel::CostMetrics m;
  m.latency_ms = cycles / (model_.tech().clock_ghz * 1e6);
  m.energy_mj = energy * 1e-9;
  m.area_mm2 = area_[config_index];
  return m;
}

std::vector<accel::CostMetrics> CostTable::evaluate_all(
    const Architecture& a) const {
  arch_space_.validate(a);
  std::vector<accel::CostMetrics> out(num_configs_);
  runtime::global_pool().parallel_for(
      0, static_cast<long>(num_configs_), kTableGrain, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          out[ci] = metrics(ci, a);
        }
      });
  return out;
}

hwgen::HwSearchResult CostTable::optimal(const Architecture& a,
                                         const accel::HwCostFn& cost_fn) const {
  DANCE_PROFILE_SCOPE("arch.cost_table.optimal");
  arch_space_.validate(a);
  // Parallel cost fill (disjoint writes), serial arg-min: the first index at
  // the minimum wins, exactly like the historical serial scan.
  std::vector<double> costs(num_configs_);
  runtime::global_pool().parallel_for(
      0, static_cast<long>(num_configs_), kTableGrain, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          costs[ci] = cost_fn(metrics(ci, a));
        }
      });
  std::size_t best_index = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t ci = 0; ci < num_configs_; ++ci) {
    if (costs[ci] < best_cost) {
      best_cost = costs[ci];
      best_index = ci;
    }
  }
  return hwgen::HwSearchResult{hw_space_.config_at(best_index),
                               metrics(best_index, a), best_cost};
}

accel::CostMetrics CostTable::expected_metrics(
    std::size_t config_index,
    const std::vector<std::vector<double>>& probs) const {
  if (static_cast<int>(probs.size()) != arch_space_.num_searchable()) {
    throw std::invalid_argument("CostTable::expected_metrics: slot mismatch");
  }
  if (config_index >= num_configs_) {
    throw std::out_of_range("CostTable::expected_metrics: bad config index");
  }
  double cycles = fixed_cycles_[config_index];
  double energy = fixed_energy_[config_index];
  for (int slot = 0; slot < arch_space_.num_searchable(); ++slot) {
    const auto& p = probs[static_cast<std::size_t>(slot)];
    if (static_cast<int>(p.size()) != kNumCandidateOps) {
      throw std::invalid_argument("CostTable::expected_metrics: op mismatch");
    }
    for (int op = 0; op < kNumCandidateOps; ++op) {
      cycles += p[static_cast<std::size_t>(op)] *
                choice_cycles_[slot_offset(slot, op) + config_index];
      energy += p[static_cast<std::size_t>(op)] *
                choice_energy_[slot_offset(slot, op) + config_index];
    }
  }
  accel::CostMetrics m;
  m.latency_ms = cycles / (model_.tech().clock_ghz * 1e6);
  m.energy_mj = energy * 1e-9;
  m.area_mm2 = area_[config_index];
  return m;
}

}  // namespace dance::arch
