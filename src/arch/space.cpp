#include "arch/space.h"

#include <stdexcept>

namespace dance::arch {

namespace {

std::vector<accel::ConvShape> lower_mbconv(const LayerSpec& l, int batch,
                                           int kernel, int expand) {
  std::vector<accel::ConvShape> shapes;
  const int mid = l.in_channels * expand;
  if (expand != 1) {
    // 1x1 expansion (pointwise).
    shapes.push_back(accel::ConvShape{batch, mid, l.in_channels, l.in_h, l.in_w,
                                      1, 1, /*stride=*/1, /*groups=*/1});
  }
  // KxK depthwise, carries the layer stride.
  shapes.push_back(accel::ConvShape{batch, mid, mid, l.in_h, l.in_w, kernel,
                                    kernel, l.stride, /*groups=*/mid});
  // 1x1 projection at the output resolution.
  const int out_h = (l.in_h + l.stride - 1) / l.stride;
  const int out_w = (l.in_w + l.stride - 1) / l.stride;
  shapes.push_back(accel::ConvShape{batch, l.out_channels, mid, out_h, out_w, 1,
                                    1, /*stride=*/1, /*groups=*/1});
  return shapes;
}

}  // namespace

std::vector<accel::ConvShape> lower_layer(const LayerSpec& layer, int batch,
                                          CandidateOp op) {
  if (is_zero(op)) return {};
  return lower_mbconv(layer, batch, kernel_size(op), expand_ratio(op));
}

std::vector<accel::ConvShape> lower_fixed_layer(const LayerSpec& layer,
                                                int batch) {
  if (layer.plain_conv) {
    return {accel::ConvShape{batch, layer.out_channels, layer.in_channels,
                             layer.in_h, layer.in_w, layer.fixed_kernel,
                             layer.fixed_kernel, layer.stride, /*groups=*/1}};
  }
  return lower_mbconv(layer, batch, layer.fixed_kernel, layer.fixed_expand);
}

ArchSpace::ArchSpace(BackboneSpec spec) : spec_(std::move(spec)) {
  searchable_positions_ = spec_.searchable_positions();
  num_searchable_ = static_cast<int>(searchable_positions_.size());
  if (num_searchable_ == 0) {
    throw std::invalid_argument("ArchSpace: backbone has no searchable layers");
  }
  for (const auto& l : spec_.layers) {
    if (l.searchable) continue;
    for (auto& s : lower_fixed_layer(l, spec_.batch)) fixed_shapes_.push_back(s);
  }
}

Architecture ArchSpace::random(util::Rng& rng) const {
  Architecture a(static_cast<std::size_t>(num_searchable_));
  for (auto& op : a) {
    op = kAllCandidateOps[static_cast<std::size_t>(
        rng.randint(0, kNumCandidateOps - 1))];
  }
  return a;
}

void ArchSpace::validate(const Architecture& a) const {
  if (static_cast<int>(a.size()) != num_searchable_) {
    throw std::invalid_argument("ArchSpace: architecture length mismatch");
  }
}

std::vector<float> ArchSpace::encode(const Architecture& a) const {
  validate(a);
  std::vector<float> enc(static_cast<std::size_t>(encoding_width()), 0.0F);
  for (int i = 0; i < num_searchable_; ++i) {
    const int op = static_cast<int>(a[static_cast<std::size_t>(i)]);
    enc[static_cast<std::size_t>(i * kNumCandidateOps + op)] = 1.0F;
  }
  return enc;
}

Architecture ArchSpace::decode(const std::vector<float>& enc) const {
  if (static_cast<int>(enc.size()) != encoding_width()) {
    throw std::invalid_argument("ArchSpace::decode: encoding width mismatch");
  }
  Architecture a(static_cast<std::size_t>(num_searchable_));
  for (int i = 0; i < num_searchable_; ++i) {
    int arg = 0;
    for (int j = 1; j < kNumCandidateOps; ++j) {
      if (enc[static_cast<std::size_t>(i * kNumCandidateOps + j)] >
          enc[static_cast<std::size_t>(i * kNumCandidateOps + arg)]) {
        arg = j;
      }
    }
    a[static_cast<std::size_t>(i)] = kAllCandidateOps[static_cast<std::size_t>(arg)];
  }
  return a;
}

std::vector<accel::ConvShape> ArchSpace::lower_choice(int slot,
                                                      CandidateOp op) const {
  if (slot < 0 || slot >= num_searchable_) {
    throw std::out_of_range("ArchSpace::lower_choice: bad slot");
  }
  const auto& layer =
      spec_.layers[static_cast<std::size_t>(searchable_positions_[static_cast<std::size_t>(slot)])];
  return lower_layer(layer, spec_.batch, op);
}

std::vector<accel::ConvShape> ArchSpace::lower(const Architecture& a) const {
  validate(a);
  std::vector<accel::ConvShape> shapes = fixed_shapes_;
  for (int i = 0; i < num_searchable_; ++i) {
    for (auto& s : lower_choice(i, a[static_cast<std::size_t>(i)])) {
      shapes.push_back(s);
    }
  }
  return shapes;
}

std::int64_t ArchSpace::macs(const Architecture& a) const {
  std::int64_t total = 0;
  for (const auto& s : lower(a)) total += s.macs();
  return total;
}

}  // namespace dance::arch
