#include "nas/supernet.h"

#include <cmath>
#include <stdexcept>

namespace dance::nas {

namespace ops = tensor::ops;
using arch::CandidateOp;
using arch::kAllCandidateOps;
using arch::kNumCandidateOps;
using tensor::Tensor;
using tensor::Variable;

int SuperNet::op_hidden_dim(const SuperNetConfig& config, CandidateOp op) {
  if (arch::is_zero(op)) return 0;
  return arch::expand_ratio(op) * config.expand_units +
         arch::kernel_size(op) * config.kernel_units;
}

SuperNet::SuperNet(const SuperNetConfig& config, util::Rng& rng)
    : config_(config) {
  if (config.num_blocks <= 0 || config.width <= 0) {
    throw std::invalid_argument("SuperNet: bad config");
  }
  stem_ = std::make_unique<nn::Linear>(config.input_dim, config.width, rng);
  blocks_.resize(static_cast<std::size_t>(config.num_blocks));
  for (auto& block : blocks_) {
    block.fc1.resize(kNumCandidateOps);
    block.fc2.resize(kNumCandidateOps);
    for (int op = 0; op < kNumCandidateOps; ++op) {
      const CandidateOp cop = kAllCandidateOps[static_cast<std::size_t>(op)];
      if (arch::is_zero(cop)) continue;
      const int hidden = op_hidden_dim(config, cop);
      block.fc1[static_cast<std::size_t>(op)] =
          std::make_unique<nn::Linear>(config.width, hidden, rng);
      block.fc2[static_cast<std::size_t>(op)] =
          std::make_unique<nn::Linear>(hidden, config.width, rng);
      // Near-identity residual branches at init (Fixup-style): keeps deep
      // stacks of un-normalized blocks stable at practical learning rates.
      block.fc2[static_cast<std::size_t>(op)]->weight().value().scale_(0.25F);
    }
  }
  classifier_ = std::make_unique<nn::Linear>(config.width, config.num_classes, rng);
  alphas_.reserve(static_cast<std::size_t>(config.num_blocks));
  for (int b = 0; b < config.num_blocks; ++b) {
    alphas_.emplace_back(Tensor::zeros({1, kNumCandidateOps}),
                         /*requires_grad=*/true);
  }
}

Variable SuperNet::op_forward(int block, int op, const Variable& h) {
  auto& blk = blocks_[static_cast<std::size_t>(block)];
  const Variable z = ops::relu(blk.fc1[static_cast<std::size_t>(op)]->forward(h));
  return blk.fc2[static_cast<std::size_t>(op)]->forward(z);
}

Variable SuperNet::forward(const Variable& x, const Gates& gates) {
  if (static_cast<int>(gates.size()) != config_.num_blocks) {
    throw std::invalid_argument("SuperNet::forward: gate count mismatch");
  }
  Variable h = ops::relu(stem_->forward(x));
  for (int b = 0; b < config_.num_blocks; ++b) {
    const Variable& gate = gates[static_cast<std::size_t>(b)];
    Variable acc = h;  // skip connection
    for (int op = 0; op < kNumCandidateOps; ++op) {
      const CandidateOp cop = kAllCandidateOps[static_cast<std::size_t>(op)];
      if (arch::is_zero(cop)) continue;  // Zero leaves only the skip
      // Skip ops whose (non-trainable-constant) gate is exactly zero —
      // one-hot gates then cost a single op per block.
      if (!gate.requires_grad() && gate.value().at(0, op) == 0.0F) continue;
      const Variable gj = ops::slice_cols(gate, op, op + 1);
      acc = ops::add(acc, ops::scale_by(op_forward(b, op, h), gj));
    }
    h = acc;
  }
  return classifier_->forward(h);
}

Variable SuperNet::forward_fixed(const Variable& x, const arch::Architecture& a) {
  if (static_cast<int>(a.size()) != config_.num_blocks) {
    throw std::invalid_argument("SuperNet::forward_fixed: arch length mismatch");
  }
  Variable h = ops::relu(stem_->forward(x));
  for (int b = 0; b < config_.num_blocks; ++b) {
    const CandidateOp cop = a[static_cast<std::size_t>(b)];
    if (arch::is_zero(cop)) continue;
    h = ops::add(h, op_forward(b, static_cast<int>(cop), h));
  }
  return classifier_->forward(h);
}

Gates SuperNet::sample_gates(float tau, bool hard, util::Rng& rng) {
  Gates gates;
  gates.reserve(alphas_.size());
  for (auto& alpha : alphas_) {
    gates.push_back(ops::gumbel_softmax(alpha, tau, hard, rng));
  }
  return gates;
}

std::vector<SuperNet::TwoPathSample> SuperNet::sample_two_paths(util::Rng& rng) {
  std::vector<TwoPathSample> samples;
  samples.reserve(alphas_.size());
  for (std::size_t b = 0; b < alphas_.size(); ++b) {
    const auto probs = arch_probs()[b];
    std::vector<float> w(probs.begin(), probs.end());
    TwoPathSample s;
    s.op_a = rng.categorical(w);
    // Draw a distinct second path.
    std::vector<float> w2 = w;
    w2[static_cast<std::size_t>(s.op_a)] = 0.0F;
    s.op_b = rng.categorical(w2);
    // Differentiable renormalized gate over the two sampled alphas.
    const Variable a = ops::slice_cols(alphas_[b], s.op_a, s.op_a + 1);
    const Variable bb = ops::slice_cols(alphas_[b], s.op_b, s.op_b + 1);
    s.gate = ops::softmax_rows(ops::concat_cols({a, bb}));
    samples.push_back(std::move(s));
  }
  return samples;
}

Variable SuperNet::forward_two_path(const Variable& x,
                                    const std::vector<TwoPathSample>& samples) {
  if (samples.size() != alphas_.size()) {
    throw std::invalid_argument("forward_two_path: sample count mismatch");
  }
  Variable h = ops::relu(stem_->forward(x));
  for (std::size_t b = 0; b < samples.size(); ++b) {
    const auto& s = samples[b];
    Variable acc = h;
    for (int side = 0; side < 2; ++side) {
      const int op = side == 0 ? s.op_a : s.op_b;
      if (arch::is_zero(kAllCandidateOps[static_cast<std::size_t>(op)])) continue;
      const Variable g = ops::slice_cols(s.gate, side, side + 1);
      acc = ops::add(acc, ops::scale_by(op_forward(static_cast<int>(b), op, h), g));
    }
    h = acc;
  }
  return classifier_->forward(h);
}

Variable SuperNet::encode_two_path(const std::vector<TwoPathSample>& samples) {
  std::vector<Variable> blocks;
  blocks.reserve(samples.size());
  for (const auto& s : samples) {
    Variable enc;
    for (int side = 0; side < 2; ++side) {
      const int op = side == 0 ? s.op_a : s.op_b;
      Tensor onehot = Tensor::zeros({1, kNumCandidateOps});
      onehot.at(0, op) = 1.0F;
      const Variable term = ops::scale_by(Variable(std::move(onehot)),
                                          ops::slice_cols(s.gate, side, side + 1));
      enc = side == 0 ? term : ops::add(enc, term);
    }
    blocks.push_back(std::move(enc));
  }
  return ops::concat_cols(blocks);
}

Gates SuperNet::softmax_gates() {
  Gates gates;
  gates.reserve(alphas_.size());
  for (auto& alpha : alphas_) gates.push_back(ops::softmax_rows(alpha));
  return gates;
}

Gates SuperNet::onehot_gates(const arch::Architecture& a) const {
  if (static_cast<int>(a.size()) != config_.num_blocks) {
    throw std::invalid_argument("SuperNet::onehot_gates: arch length mismatch");
  }
  Gates gates;
  gates.reserve(a.size());
  for (const auto op : a) {
    Tensor t = Tensor::zeros({1, kNumCandidateOps});
    t.at(0, static_cast<int>(op)) = 1.0F;
    gates.emplace_back(std::move(t), /*requires_grad=*/false);
  }
  return gates;
}

Variable SuperNet::encode_gates(const Gates& gates) {
  return ops::concat_cols(gates);
}

std::vector<std::vector<double>> SuperNet::arch_probs() const {
  std::vector<std::vector<double>> probs;
  probs.reserve(alphas_.size());
  for (const auto& alpha : alphas_) {
    std::vector<double> p(kNumCandidateOps);
    double mx = alpha.value()[0];
    for (int j = 1; j < kNumCandidateOps; ++j) {
      mx = std::max(mx, static_cast<double>(alpha.value()[static_cast<std::size_t>(j)]));
    }
    double sum = 0.0;
    for (int j = 0; j < kNumCandidateOps; ++j) {
      p[static_cast<std::size_t>(j)] =
          std::exp(static_cast<double>(alpha.value()[static_cast<std::size_t>(j)]) - mx);
      sum += p[static_cast<std::size_t>(j)];
    }
    for (auto& v : p) v /= sum;
    probs.push_back(std::move(p));
  }
  return probs;
}

arch::Architecture SuperNet::derive() const {
  arch::Architecture a;
  a.reserve(alphas_.size());
  for (const auto& alpha : alphas_) {
    int arg = 0;
    for (int j = 1; j < kNumCandidateOps; ++j) {
      if (alpha.value()[static_cast<std::size_t>(j)] >
          alpha.value()[static_cast<std::size_t>(arg)]) {
        arg = j;
      }
    }
    a.push_back(kAllCandidateOps[static_cast<std::size_t>(arg)]);
  }
  return a;
}

std::vector<Variable> SuperNet::weight_parameters() {
  std::vector<Variable> ps = stem_->parameters();
  for (auto& block : blocks_) {
    for (int op = 0; op < kNumCandidateOps; ++op) {
      if (!block.fc1[static_cast<std::size_t>(op)]) continue;
      for (auto& p : block.fc1[static_cast<std::size_t>(op)]->parameters()) ps.push_back(p);
      for (auto& p : block.fc2[static_cast<std::size_t>(op)]->parameters()) ps.push_back(p);
    }
  }
  for (auto& p : classifier_->parameters()) ps.push_back(p);
  return ps;
}

std::vector<Variable> SuperNet::arch_parameters() { return alphas_; }

}  // namespace dance::nas
