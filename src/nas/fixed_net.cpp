#include "nas/fixed_net.h"

#include <stdexcept>

namespace dance::nas {

namespace ops = tensor::ops;
using tensor::Variable;

FixedNet::FixedNet(const SuperNetConfig& config, const arch::Architecture& a,
                   util::Rng& rng)
    : config_(config), arch_(a) {
  if (static_cast<int>(a.size()) != config.num_blocks) {
    throw std::invalid_argument("FixedNet: architecture length mismatch");
  }
  stem_ = std::make_unique<nn::Linear>(config.input_dim, config.width, rng);
  fc1_.resize(a.size());
  fc2_.resize(a.size());
  for (std::size_t b = 0; b < a.size(); ++b) {
    if (arch::is_zero(a[b])) continue;
    const int hidden = SuperNet::op_hidden_dim(config, a[b]);
    fc1_[b] = std::make_unique<nn::Linear>(config.width, hidden, rng);
    fc2_[b] = std::make_unique<nn::Linear>(hidden, config.width, rng);
    // Near-identity residual branches at init (see SuperNet).
    fc2_[b]->weight().value().scale_(0.25F);
  }
  classifier_ = std::make_unique<nn::Linear>(config.width, config.num_classes, rng);
}

Variable FixedNet::forward(const Variable& x) {
  Variable h = ops::relu(stem_->forward(x));
  for (std::size_t b = 0; b < fc1_.size(); ++b) {
    if (!fc1_[b]) continue;  // Zero block: only the skip connection remains
    h = ops::add(h, fc2_[b]->forward(ops::relu(fc1_[b]->forward(h))));
  }
  return classifier_->forward(h);
}

std::vector<Variable> FixedNet::parameters() {
  std::vector<Variable> ps = stem_->parameters();
  for (std::size_t b = 0; b < fc1_.size(); ++b) {
    if (!fc1_[b]) continue;
    for (auto& p : fc1_[b]->parameters()) ps.push_back(p);
    for (auto& p : fc2_[b]->parameters()) ps.push_back(p);
  }
  for (auto& p : classifier_->parameters()) ps.push_back(p);
  return ps;
}

}  // namespace dance::nas
