#pragma once

#include <memory>
#include <vector>

#include "arch/space.h"
#include "nas/supernet.h"
#include "nn/linear.h"

namespace dance::nas {

/// A concrete (post-search) network: the supernet restricted to one chosen
/// op per block, with freshly initialized weights. The paper retrains the
/// searched architecture from scratch; this is that network.
class FixedNet {
 public:
  FixedNet(const SuperNetConfig& config, const arch::Architecture& a,
           util::Rng& rng);

  [[nodiscard]] tensor::Variable forward(const tensor::Variable& x);
  [[nodiscard]] std::vector<tensor::Variable> parameters();

  [[nodiscard]] const arch::Architecture& architecture() const { return arch_; }

 private:
  SuperNetConfig config_;
  arch::Architecture arch_;
  std::unique_ptr<nn::Linear> stem_;
  // One (fc1, fc2) pair per non-Zero block, nullptr for Zero blocks.
  std::vector<std::unique_ptr<nn::Linear>> fc1_;
  std::vector<std::unique_ptr<nn::Linear>> fc2_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace dance::nas
