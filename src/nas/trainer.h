#pragma once

#include <functional>

#include "data/synthetic.h"
#include "nas/fixed_net.h"

namespace dance::nas {

/// Forward function type used by the generic evaluation helper.
using ForwardFn = std::function<tensor::Variable(const tensor::Variable&)>;

/// Top-1 accuracy (%) of `forward` on a dataset, evaluated in batches.
[[nodiscard]] double accuracy_pct(const ForwardFn& forward,
                                  const data::Dataset& ds, int batch_size = 256);

/// Post-search from-scratch training options (the paper retrains searched
/// networks for 200 epochs with SGD + Nesterov momentum + cosine schedule;
/// defaults are the scaled-down equivalents).
struct FixedTrainOptions {
  int epochs = 30;
  int batch_size = 128;
  float lr = 0.01F;  ///< un-normalized residual MLPs diverge above ~0.01
  float momentum = 0.9F;
  float weight_decay = 1e-3F;
  /// Global grad-norm clip; deep un-normalized residual stacks need this to
  /// stay stable at useful learning rates.
  float max_grad_norm = 2.0F;
  std::uint64_t seed = 11;
};

struct FixedTrainResult {
  double train_accuracy_pct = 0.0;
  double val_accuracy_pct = 0.0;
};

/// Train a concrete network from scratch on the task and report accuracy.
FixedTrainResult train_fixed_net(FixedNet& net, const data::SyntheticTask& task,
                                 const FixedTrainOptions& opts);

}  // namespace dance::nas
