#include "nas/trainer.h"

#include "nn/optim.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/profiler.h"
#include "util/stats.h"

namespace dance::nas {

namespace ops = tensor::ops;
using tensor::Variable;

double accuracy_pct(const ForwardFn& forward, const data::Dataset& ds,
                    int batch_size) {
  DANCE_PROFILE_SCOPE("nas.accuracy");
  const int n = ds.size();
  std::size_t hit = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int stop = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(stop - start));
    for (int i = start; i < stop; ++i) idx[static_cast<std::size_t>(i - start)] = i;
    auto [bx, by] = ds.batch(idx);
    const Variable logits = forward(Variable(std::move(bx)));
    for (int r = 0; r < stop - start; ++r) {
      int arg = 0;
      for (int c = 1; c < ds.num_classes; ++c) {
        if (logits.value().at(r, c) > logits.value().at(r, arg)) arg = c;
      }
      if (arg == by[static_cast<std::size_t>(r)]) ++hit;
    }
  }
  return n == 0 ? 0.0 : 100.0 * static_cast<double>(hit) / n;
}

FixedTrainResult train_fixed_net(FixedNet& net, const data::SyntheticTask& task,
                                 const FixedTrainOptions& opts) {
  util::Rng rng(opts.seed);
  nn::Sgd::Options sgd;
  sgd.lr = opts.lr;
  sgd.momentum = opts.momentum;
  sgd.nesterov = true;
  sgd.weight_decay = opts.weight_decay;
  sgd.max_grad_norm = opts.max_grad_norm;
  nn::Sgd optimizer(net.parameters(), sgd);
  const nn::CosineSchedule schedule(opts.lr, opts.epochs);

  obs::Gauge& loss_gauge = obs::Registry::global().gauge("nas.fixed.loss");
  const int n = task.train.size();
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("nas.fixed.epoch");
    optimizer.set_lr(schedule.lr(epoch));
    const auto perm = rng.permutation(n);
    double loss_sum = 0.0;
    int steps = 0;
    for (int start = 0; start < n; start += opts.batch_size) {
      DANCE_PROFILE_SCOPE("nas.fixed.step");
      const int stop = std::min(n, start + opts.batch_size);
      const std::vector<int> idx(perm.begin() + start, perm.begin() + stop);
      auto [bx, by] = task.train.batch(idx);
      const Variable logits = net.forward(Variable(std::move(bx)));
      const Variable loss = ops::cross_entropy(logits, by);
      loss_sum += loss.value()[0];
      ++steps;
      optimizer.zero_grad();
      loss.backward();
      optimizer.step();
    }
    if (steps > 0) loss_gauge.set(loss_sum / steps);
  }
  FixedTrainResult result;
  const auto fwd = [&net](const Variable& x) {
    return const_cast<FixedNet&>(net).forward(x);
  };
  result.train_accuracy_pct = accuracy_pct(fwd, task.train);
  result.val_accuracy_pct = accuracy_pct(fwd, task.val);
  return result;
}

}  // namespace dance::nas
