#pragma once

#include <memory>
#include <vector>

#include "arch/space.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace dance::nas {

/// Configuration of the differentiable supernet. The supernet is the
/// synthetic-task stand-in for the ProxylessNAS CIFAR-10 supernet (see
/// DESIGN.md §2): each searchable layer carries the same seven candidate
/// operations as the paper, realized as residual bottleneck MLP blocks whose
/// capacity grows with kernel size and expansion ratio — so the *search
/// dynamics* (accuracy pulls toward big ops, hardware cost pushes toward
/// small/Zero ops) are preserved, while the hardware cost of each choice is
/// computed from the true MBConv convolution shapes by the accel library.
struct SuperNetConfig {
  int input_dim = 16;
  int num_classes = 10;
  int width = 48;       ///< residual trunk width
  int num_blocks = 9;   ///< searchable layers (matches the backbone)
  /// Hidden units of a candidate block = expand * expand_units +
  /// kernel * kernel_units: capacity ordering mirrors MBConv MACs ordering.
  int expand_units = 6;
  int kernel_units = 4;
};

/// Per-block gate vector: [1, kNumCandidateOps] mixture weights (one-hot or
/// soft) over the candidate operations.
using Gates = std::vector<tensor::Variable>;

/// The over-parameterized search network with per-layer architecture
/// parameters alpha (Fig. 3, left side).
class SuperNet {
 public:
  SuperNet(const SuperNetConfig& config, util::Rng& rng);

  /// Mixture forward: block output = skip + sum_j gate_j * op_j(h).
  /// Gates typically come from `sample_gates` (Gumbel) or one-hot tensors.
  [[nodiscard]] tensor::Variable forward(const tensor::Variable& x,
                                         const Gates& gates);

  /// Single-path forward for a concrete architecture (used for weight
  /// training on sampled paths; only the chosen op's weights get gradients).
  [[nodiscard]] tensor::Variable forward_fixed(const tensor::Variable& x,
                                               const arch::Architecture& a);

  /// Gumbel-softmax sample of all block gates from the architecture
  /// parameters (straight-through one-hot when `hard`).
  [[nodiscard]] Gates sample_gates(float tau, bool hard, util::Rng& rng);

  /// One ProxylessNAS-style binarized sample: two candidate paths per block,
  /// drawn by the current probabilities, with a differentiable 2-way softmax
  /// gate over their architecture parameters (Cai et al. 2018; the
  /// "binarized method" of §4.1).
  struct TwoPathSample {
    int op_a = 0;
    int op_b = 0;
    tensor::Variable gate;  ///< [1, 2] softmax over (alpha_a, alpha_b)
  };
  [[nodiscard]] std::vector<TwoPathSample> sample_two_paths(util::Rng& rng);

  /// Mixture forward over the two sampled paths per block.
  [[nodiscard]] tensor::Variable forward_two_path(
      const tensor::Variable& x, const std::vector<TwoPathSample>& samples);

  /// Evaluator encoding of a two-path sample: per block, the 2-way gate
  /// probabilities placed at the sampled op positions (zeros elsewhere).
  [[nodiscard]] static tensor::Variable encode_two_path(
      const std::vector<TwoPathSample>& samples);

  /// Deterministic softmax of the architecture parameters (no sampling).
  [[nodiscard]] Gates softmax_gates();

  /// One-hot constant gates for a concrete architecture.
  [[nodiscard]] Gates onehot_gates(const arch::Architecture& a) const;

  /// Concatenate block gates into the [1, num_blocks*7] evaluator encoding.
  [[nodiscard]] static tensor::Variable encode_gates(const Gates& gates);

  /// Current op probability distribution per block (softmax of alpha).
  [[nodiscard]] std::vector<std::vector<double>> arch_probs() const;

  /// Arg-max discretization of the architecture parameters.
  [[nodiscard]] arch::Architecture derive() const;

  [[nodiscard]] std::vector<tensor::Variable> weight_parameters();
  [[nodiscard]] std::vector<tensor::Variable> arch_parameters();

  [[nodiscard]] const SuperNetConfig& config() const { return config_; }

  /// Hidden width of candidate op blocks (exposed for FixedNet parity).
  [[nodiscard]] static int op_hidden_dim(const SuperNetConfig& config,
                                         arch::CandidateOp op);

 private:
  struct CandidateBlock {
    // fc1/fc2 per non-Zero candidate op, indexed by op enum value.
    std::vector<std::unique_ptr<nn::Linear>> fc1;
    std::vector<std::unique_ptr<nn::Linear>> fc2;
  };

  [[nodiscard]] tensor::Variable op_forward(int block, int op,
                                            const tensor::Variable& h);

  SuperNetConfig config_;
  std::unique_ptr<nn::Linear> stem_;
  std::vector<CandidateBlock> blocks_;
  std::unique_ptr<nn::Linear> classifier_;
  std::vector<tensor::Variable> alphas_;  ///< per block [1, 7]
};

}  // namespace dance::nas
