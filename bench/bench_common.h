#pragma once

// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench prints the corresponding paper table/figure in ASCII form and
// (where useful) times hot components with google-benchmark. The scale knob
// DANCE_BENCH_SCALE (float, default 1.0) multiplies dataset sizes and epoch
// counts so the same binaries can run paper-closer workloads when given more
// time: e.g. DANCE_BENCH_SCALE=4 ./bench_table1_evaluator.

#include <cstdlib>
#include <string>

namespace dance::bench {

/// Scale factor from the environment (default 1.0, clamped to [0.1, 100]).
inline double scale() {
  const char* env = std::getenv("DANCE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v < 0.1) return 0.1;
  if (v > 100.0) return 100.0;
  return v;
}

inline int scaled(int base) {
  const double v = static_cast<double>(base) * scale();
  return v < 1.0 ? 1 : static_cast<int>(v);
}

}  // namespace dance::bench
