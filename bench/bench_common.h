#pragma once

// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench prints the corresponding paper table/figure in ASCII form and
// (where useful) times hot components with google-benchmark. The scale knob
// DANCE_BENCH_SCALE (float, default 1.0) multiplies dataset sizes and epoch
// counts so the same binaries can run paper-closer workloads when given more
// time: e.g. DANCE_BENCH_SCALE=4 ./bench_table1_evaluator.

#include <filesystem>
#include <string>
#include <vector>

#include "testing/generators.h"
#include "util/env.h"
#include "util/rng.h"

namespace dance::bench {

/// Scale factor from the environment (default 1.0, valid range [0.1, 100];
/// anything else falls back to 1.0).
inline double scale() {
  return util::env_double("DANCE_BENCH_SCALE", 1.0, 0.1, 100.0);
}

inline int scaled(int base) {
  const double v = static_cast<double>(base) * scale();
  return v < 1.0 ? 1 : static_cast<int>(v);
}

/// Where benches drop their CSV artifacts: $DANCE_BENCH_DATA_DIR, defaulting
/// to bench/data (created on demand) so repo-root invocations keep outputs
/// out of the working directory.
inline std::string data_path(const std::string& filename) {
  const std::filesystem::path dir =
      util::env_string("DANCE_BENCH_DATA_DIR", "bench/data");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return (dir / filename).string();
}

/// Randomized conv layers for throughput/stress benches, drawn from the same
/// generator the property suites fuzz the cost backends with (pointwise,
/// depthwise, grouped and dense shapes; see testing::conv_shape_gen) so
/// bench workloads and test coverage stay in sync.
inline std::vector<accel::ConvShape> sample_conv_shapes(int count,
                                                        std::uint64_t seed) {
  const auto gen = testing::conv_shape_gen();
  util::Rng rng(seed);
  std::vector<accel::ConvShape> shapes;
  shapes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) shapes.push_back(gen.sample(rng));
  return shapes;
}

}  // namespace dance::bench
