// Reproduction of Table 3: "Comparison of Existing Co-exploration
// Algorithms".
//
// The published comparison spans different hardware environments, so (like
// the paper) the comparable columns are accuracy, search cost, and above all
// the number of candidate networks each method must *train*: RL-based
// co-exploration needs hundreds-to-thousands, DANCE needs exactly one.
// Here both methods run on an equal search space: our REINFORCE
// co-exploration baseline vs. DANCE.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/dance.h"
#include "search/design_points.h"
#include "search/ea.h"
#include "search/rl.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;
using search::CostKind;

void run_table3() {
  std::printf("== Table 3: Co-exploration algorithm comparison (equal search "
              "space) ==\n\n");

  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = dance::bench::scaled(3072);
  dcfg.val_samples = 1024;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = 48;
  net_config.num_blocks = arch_space.num_searchable();

  const int retrain_epochs = dance::bench::scaled(25);

  // --- RL-based co-exploration (the prior-work approach, Fig. 2). ---
  search::RlOptions rl_opts;
  rl_opts.num_candidates = dance::bench::scaled(120);
  rl_opts.proxy_epochs = 3;
  rl_opts.retrain.epochs = retrain_epochs;
  const search::SearchOutcome rl =
      search::run_rl_coexploration(task, table, net_config, rl_opts);

  // --- Evolutionary co-exploration (regularized evolution, joint genome).
  search::EaOptions ea_opts;
  ea_opts.population = dance::bench::scaled(16);
  ea_opts.generations = dance::bench::scaled(6);
  ea_opts.retrain.epochs = retrain_epochs;
  const search::SearchOutcome ea =
      search::run_ea_coexploration(task, table, net_config, ea_opts);

  // --- DANCE (1 trained candidate: the supernet itself). ---
  util::Rng rng(41);
  evalnet::Evaluator::Options eopts;
  eopts.cost.hidden_dim = 192;
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng, eopts);
  {
    auto ds = evalnet::generate_evaluator_dataset(
        table, search::make_cost_fn(CostKind::kEdap),
        dance::bench::scaled(8000), rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.85);
    evalnet::TrainOptions hw_opts;
    hw_opts.epochs = dance::bench::scaled(20);
    hw_opts.lr = 0.05F;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
    evalnet::TrainOptions cost_opts;
    cost_opts.epochs = dance::bench::scaled(25);
    cost_opts.lr = 4e-3F;
    evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  }
  // Like Table 2, report the accuracy-oriented point of a small lambda2
  // sweep (still one trained candidate per search; the whole sweep is
  // cheaper than proxy-training a handful of RL candidates).
  std::vector<search::SearchOutcome> sweep;
  double sweep_seconds = 0.0;
  for (const float l2 : {1.0F, 2.0F, 3.0F}) {
    search::DanceOptions d_opts;
    d_opts.search_epochs = dance::bench::scaled(12);
    d_opts.warmup_epochs = std::max(1, d_opts.search_epochs / 4);
    d_opts.lambda2 = l2;
    d_opts.retrain.epochs = retrain_epochs;
    d_opts.seed = 41 + static_cast<std::uint64_t>(l2 * 10);
    search::DanceSearch dance_search(task, table, evaluator, net_config, d_opts);
    sweep.push_back(dance_search.run());
    sweep_seconds += sweep.back().search_seconds;
  }
  search::SearchOutcome dance_out =
      search::select_design_points(sweep, search::make_cost_fn(CostKind::kEdap),
                                   2.5)
          .efficiency_oriented;
  dance_out.search_seconds = sweep_seconds;

  util::Table t({"Algorithm", "Method", "Acc.(%)", "EDAP", "Search(s)",
                 "#Candidates"});
  t.add_row({"RL co-exploration (prior work)", "RL",
             util::Table::fmt(rl.val_accuracy_pct, 1),
             util::Table::fmt(rl.metrics.edap(), 3),
             util::Table::fmt(rl.search_seconds, 1),
             std::to_string(rl.trained_candidates)});
  t.add_row({"EA co-exploration (regularized evolution)", "EA",
             util::Table::fmt(ea.val_accuracy_pct, 1),
             util::Table::fmt(ea.metrics.edap(), 3),
             util::Table::fmt(ea.search_seconds, 1),
             std::to_string(ea.trained_candidates)});
  t.add_row({"DANCE", "gradient",
             util::Table::fmt(dance_out.val_accuracy_pct, 1),
             util::Table::fmt(dance_out.metrics.edap(), 3),
             util::Table::fmt(dance_out.search_seconds, 1),
             std::to_string(dance_out.trained_candidates)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper shape: RL methods train 10^2..10^3 candidates; DANCE "
              "trains 1 and matches/beats accuracy.\n\n");
}

/// Microbenchmark: marginal cost of evaluating one more RL candidate
/// (proxy-training included) — the unit the RL search pays per sample.
void BM_RlCandidateEvaluation(benchmark::State& state) {
  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = 512;
  dcfg.val_samples = 128;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);
  nas::SuperNetConfig cfg;
  cfg.input_dim = dcfg.input_dim;
  cfg.num_classes = dcfg.num_classes;
  cfg.width = 48;
  cfg.num_blocks = 9;
  util::Rng rng(1);
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  nas::FixedTrainOptions proxy;
  proxy.epochs = 3;
  for (auto _ : state) {
    const arch::Architecture a = arch_space.random(rng);
    nas::FixedNet net(cfg, a, rng);
    benchmark::DoNotOptimize(nas::train_fixed_net(net, task, proxy));
  }
}
BENCHMARK(BM_RlCandidateEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
