// Reproduction of Table 1: "Performance of the Evaluator Network".
//
// Trains and validates, on exhaustive-search ground truth:
//   - the hardware generation network (per-head classification accuracy),
//   - the cost estimation network without feature forwarding,
//   - the cost estimation network with feature forwarding,
//   - the end-to-end evaluator (HwGenNet -> Gumbel softmax -> CostNet).
//
// Expected shape (paper): hardware generation heads ~99%; cost estimation
// w/o FF in the low-to-mid 90s; w/ FF several points higher (~99+); overall
// evaluator close to the w/-FF numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "accel/cost_function.h"
#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;

struct Pipeline {
  std::unique_ptr<arch::ArchSpace> arch_space;
  std::unique_ptr<hwgen::HwSearchSpace> hw_space;
  std::unique_ptr<accel::CostModel> model;
  std::unique_ptr<arch::CostTable> table;
  evalnet::EvaluatorDataset train;
  evalnet::EvaluatorDataset val;
};

Pipeline build_pipeline(int train_count, int val_count) {
  Pipeline p;
  p.arch_space = std::make_unique<arch::ArchSpace>(arch::cifar10_backbone());
  p.hw_space = std::make_unique<hwgen::HwSearchSpace>();
  p.model = std::make_unique<accel::CostModel>();
  p.table = std::make_unique<arch::CostTable>(*p.arch_space, *p.hw_space, *p.model);
  util::Rng rng(2024);
  const auto ds = evalnet::generate_evaluator_dataset(
      *p.table, accel::edap_cost(), train_count + val_count, rng);
  auto [train, val] = evalnet::split_dataset(
      ds, static_cast<double>(train_count) / (train_count + val_count));
  p.train = std::move(train);
  p.val = std::move(val);
  return p;
}

void run_table1() {
  // Paper-scale: 1.8M cost samples / 50K hwgen samples, 200 epochs.
  // Scaled-down defaults keep the bench in the minutes range.
  const int train_count = dance::bench::scaled(12000);
  const int val_count = dance::bench::scaled(3000);
  const int epochs = dance::bench::scaled(30);

  std::printf("== Table 1: Performance of the Evaluator Network ==\n");
  std::printf("ground truth: exhaustive search over %s configs, %d train / %d "
              "val architectures, %d epochs\n\n",
              "13872", train_count, val_count, epochs);

  Pipeline p = build_pipeline(train_count, val_count);
  util::Rng rng(77);

  // --- Hardware generation network. ---
  evalnet::HwGenNet hwgen_net(p.arch_space->encoding_width(), *p.hw_space, rng);
  evalnet::TrainOptions hw_opts;
  hw_opts.epochs = epochs;
  hw_opts.batch_size = 128;   // paper: SGD batch 128
  hw_opts.lr = 0.05F;
  const evalnet::HwGenEval hw_eval =
      evalnet::train_hwgen_net(hwgen_net, p.train, p.val, hw_opts);

  // --- Cost estimation network without feature forwarding. ---
  evalnet::CostNet::Options no_ff;
  no_ff.feature_forwarding = false;
  evalnet::CostNet cost_no_ff(p.arch_space->encoding_width(),
                              p.hw_space->encoding_width(), rng, no_ff);
  evalnet::TrainOptions cost_opts;
  cost_opts.epochs = epochs;
  cost_opts.batch_size = 128;
  cost_opts.lr = 4e-3F;
  const evalnet::CostEval eval_no_ff =
      evalnet::train_cost_net(cost_no_ff, p.train, p.val, cost_opts);

  // --- Cost estimation network with feature forwarding. ---
  evalnet::CostNet::Options with_ff;
  with_ff.feature_forwarding = true;
  evalnet::CostNet cost_ff(p.arch_space->encoding_width(),
                           p.hw_space->encoding_width(), rng, with_ff);
  const evalnet::CostEval eval_ff =
      evalnet::train_cost_net(cost_ff, p.train, p.val, cost_opts);

  // --- End-to-end evaluator: trained components cascaded via Gumbel. ---
  evalnet::Evaluator evaluator(p.arch_space->encoding_width(), *p.hw_space, rng);
  {
    evalnet::TrainOptions opts = hw_opts;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), p.train, p.val, opts);
    evalnet::TrainOptions copts = cost_opts;
    evalnet::train_cost_net(evaluator.cost_net(), p.train, p.val, copts);
  }
  const evalnet::CostEval eval_overall =
      evalnet::evaluate_evaluator(evaluator, p.val, rng);

  util::Table t({"Network", "Objective", "Accuracy"});
  const char* heads[4] = {"PEX", "PEY", "RF Size", "Dataflow"};
  for (int h = 0; h < 4; ++h) {
    t.add_row({h == 0 ? "Hardware Generation" : "", heads[h],
               util::Table::fmt(hw_eval.head_accuracy_pct[static_cast<std::size_t>(h)], 1) + "%"});
  }
  const char* metrics[3] = {"Latency", "Energy", "Area"};
  for (int m = 0; m < 3; ++m) {
    t.add_row({m == 0 ? "Cost Estimation (w/o FF)" : "", metrics[m],
               util::Table::fmt(eval_no_ff.metric_accuracy_pct[static_cast<std::size_t>(m)], 1) + "%"});
  }
  for (int m = 0; m < 3; ++m) {
    t.add_row({m == 0 ? "Cost Estimation (w/ FF)" : "", metrics[m],
               util::Table::fmt(eval_ff.metric_accuracy_pct[static_cast<std::size_t>(m)], 1) + "%"});
  }
  for (int m = 0; m < 3; ++m) {
    t.add_row({m == 0 ? "Overall Evaluator" : "", metrics[m],
               util::Table::fmt(eval_overall.metric_accuracy_pct[static_cast<std::size_t>(m)], 1) + "%"});
  }
  std::printf("%s\n", t.to_string().c_str());

  double ff_gain = 0.0;
  for (int m = 0; m < 3; ++m) {
    ff_gain += (eval_ff.metric_accuracy_pct[static_cast<std::size_t>(m)] -
                eval_no_ff.metric_accuracy_pct[static_cast<std::size_t>(m)]) / 3.0;
  }
  std::printf("feature forwarding gain: %+.1f %%p on average (paper: +4.3 %%p)\n\n",
              ff_gain);
}

/// google-benchmark microbenchmark: evaluator dataset generation rate
/// (exhaustive ground-truth searches per second via the cost LUT).
void BM_GroundTruthSearch(benchmark::State& state) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);
  util::Rng rng(1);
  const auto cost_fn = accel::edap_cost();
  for (auto _ : state) {
    const arch::Architecture a = arch_space.random(rng);
    benchmark::DoNotOptimize(table.optimal(a, cost_fn));
  }
}
BENCHMARK(BM_GroundTruthSearch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
