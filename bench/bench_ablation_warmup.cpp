// Ablation of the hyper-parameter warm-up (§3.4).
//
// The paper motivates warm-up by the collapse failure mode: "selecting most
// of the operations to be zero quickly optimizes all of the latency, area,
// and the energy consumption. Once the architecture falls into such a
// solution it is difficult to find heavier architectures."
//
// This harness runs the same DANCE search with and without warm-up at an
// aggressive lambda2 and reports how many searchable slots collapsed to
// Zero, the retrained accuracy, and the hardware cost. Expected shape:
// without warm-up the architecture collapses (many Zero slots, poor
// accuracy); with warm-up the search keeps capacity where it matters.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/dance.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;
using search::CostKind;

int zero_slots(const arch::Architecture& a) {
  int n = 0;
  for (const auto op : a) n += arch::is_zero(op) ? 1 : 0;
  return n;
}

void run_ablation() {
  std::printf("== Ablation: lambda2 warm-up (§3.4) ==\n\n");

  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = dance::bench::scaled(3072);
  dcfg.val_samples = 1024;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = 48;
  net_config.num_blocks = arch_space.num_searchable();

  // One shared evaluator.
  util::Rng rng(71);
  evalnet::Evaluator::Options eopts;
  eopts.cost.hidden_dim = 192;
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng, eopts);
  {
    auto ds = evalnet::generate_evaluator_dataset(
        table, search::make_cost_fn(CostKind::kEdap),
        dance::bench::scaled(6000), rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.85);
    evalnet::TrainOptions hw_opts;
    hw_opts.epochs = dance::bench::scaled(15);
    hw_opts.lr = 0.05F;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
    evalnet::TrainOptions cost_opts;
    cost_opts.epochs = dance::bench::scaled(20);
    cost_opts.lr = 4e-3F;
    evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  }

  const int search_epochs = dance::bench::scaled(12);
  util::Table t({"Schedule", "Zero slots (of 9)", "Acc.(%)", "EDAP"});
  for (const bool warmup : {false, true}) {
    search::DanceOptions opts;
    opts.search_epochs = search_epochs;
    opts.lambda2 = 5.0F;  // aggressive enough to invite collapse from step 0
    opts.warmup_epochs = warmup ? std::max(1, search_epochs / 2) : 0;
    opts.retrain.epochs = dance::bench::scaled(25);
    opts.seed = 73;
    search::DanceSearch dance(task, table, evaluator, net_config, opts);
    const search::SearchOutcome out = dance.run();
    t.add_row({warmup ? "with warm-up" : "no warm-up (lambda2 from step 0)",
               std::to_string(zero_slots(out.architecture)),
               util::Table::fmt(out.val_accuracy_pct, 1),
               util::Table::fmt(out.metrics.edap(), 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper shape: without warm-up the search collapses toward "
              "all-Zero before accuracy can form; warm-up avoids this.\n\n");
}

/// Microbenchmark: one warm-up schedule evaluation (trivially cheap; present
/// so the binary exercises google-benchmark like its siblings).
void BM_WarmupSchedule(benchmark::State& state) {
  const search::LambdaWarmup w(0.0F, 5.0F, 10, 4);
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.value(epoch++ % 40));
  }
}
BENCHMARK(BM_WarmupSchedule);

}  // namespace

int main(int argc, char** argv) {
  run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
