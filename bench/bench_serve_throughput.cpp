// dance::serve throughput: what does the service layer buy over calling the
// evaluator directly?
//
// Replays a 10k-request trace (scaled by DANCE_BENCH_SCALE) with a unique-key
// pool of N/8 — i.e. ~87% of requests repeat an earlier key, the regime a
// NAS search loop produces when candidate architectures recur across
// iterations. Three ways to answer the same trace:
//   serial          one Evaluator::forward_deterministic per request
//   batched         Evaluator::forward_batch in max_batch-sized chunks
//   cached+batched  Service::query_many in 512-request arrival windows
//                   (sharded LRU across windows + within-call dedup +
//                   batched backend)
// plus a degraded-mode row: the cached+batched stack with 10% injected
// backend errors behind the resilience decorator (retries + fallback), to
// price what fault tolerance costs when the backend actually misbehaves.
// Expected shape: batching amortizes per-call overhead for a low-single-digit
// multiple; the cache turns the ~75% repeats into lookups for >=5x combined.
// The serial and batched answers are checked bit-identical first — the
// deterministic-inference contract that makes the comparison meaningful.
//
// A registry row prices zero-downtime hot swaps: the same trace replayed
// through the registry backend (pin -> generation-scoped cache) while a
// publisher thread publishes a new generation at the halfway mark. The row
// reports steady-state vs swap-window QPS and p99 (the window spans the
// publish plus the cold-namespace re-warm right after the swap) — the
// price of a swap is a transient dip, never a dropped or errored response.
//
// A second section compares the surrogate's inference tiers (DANCE_INFER):
// the same single-query trace answered by the autograd graph walk, the fused
// frozen plan, and the plan's int8 tier — QPS, p50/p95 latency, and the
// cost-ordering agreement of each tier against the autograd reference
// (fraction of unique-key pairs ranked the same by predicted latency; fused
// is bit-identical so its agreement is exactly 1).
//
// A third section prices the exact ground-truth path's startup and serving
// under the CostProvider API: an in-memory CostTable build (DANCE_COST=exact
// and =lut) vs mmap-loading a compiled DCTB artifact — build/load wall time,
// RSS delta, file size, and ExactBackend QPS/p50/p99 through each provider,
// with a bit-identity check between the mmap and in-memory answers. Rows go
// to bench/data/cost_table.csv. Set DANCE_BENCH_ONLY=costtable to run just
// this section (the CI release smoke does).
//
// Prints ASCII tables, writes bench/data/serve_throughput.csv,
// bench/data/infer_tiers.csv and bench/data/cost_table.csv, and runs
// google-benchmark micros for the per-query primitives.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "accel/cost_function.h"
#include "arch/cost_artifact.h"
#include "arch/cost_table.h"
#include "bench_common.h"
#include "evalnet/evaluator.h"
#include "fault/fault.h"
#include "fault/faulty_backend.h"
#include "infer/plan.h"
#include "registry/registry.h"
#include "serve/backend.h"
#include "serve/resilient.h"
#include "serve/service.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace dance;

struct Env {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space;
  std::unique_ptr<evalnet::Evaluator> evaluator;
  std::vector<std::vector<float>> unique_keys;
  std::vector<serve::Request> trace;  ///< the replayed request sequence

  Env() {
    util::Rng rng(21);
    evaluator = std::make_unique<evalnet::Evaluator>(
        arch_space.encoding_width(), hw_space, rng);
    evaluator->set_frozen(true);
    evaluator->set_training(false);

    const int n = bench::scaled(10000);
    const int unique = std::max(1, n / 8);  // ~87% repeated keys
    unique_keys.reserve(static_cast<std::size_t>(unique));
    for (int k = 0; k < unique; ++k) {
      unique_keys.push_back(arch_space.encode(arch_space.random(rng)));
    }
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      trace.push_back(serve::Request{
          unique_keys[static_cast<std::size_t>(rng.randint(0, unique - 1))]});
    }
  }
};

Env& env() {
  static Env e;
  return e;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

constexpr int kChunk = 64;  ///< batched-mode slice, also the service max_batch

/// Serial replay: the naive client, one single-row forward per request.
/// Returns the flat [N, 3] metrics for the bit-identity check.
std::vector<float> replay_serial(double& seconds) {
  Env& e = env();
  std::vector<float> metrics;
  metrics.reserve(e.trace.size() * 3);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& req : e.trace) {
    tensor::Variable row(tensor::Tensor::from(
        {1, static_cast<int>(req.encoding.size())}, req.encoding));
    const auto out = e.evaluator->forward_deterministic(row);
    const float* m = out.metrics.value().data();
    metrics.insert(metrics.end(), m, m + 3);
  }
  seconds = seconds_since(start);
  return metrics;
}

/// Batched replay: forward_batch over kChunk-row slices, no cache.
std::vector<float> replay_batched(double& seconds) {
  Env& e = env();
  std::vector<float> metrics;
  metrics.reserve(e.trace.size() * 3);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t at = 0; at < e.trace.size(); at += kChunk) {
    const std::size_t hi = std::min(at + kChunk, e.trace.size());
    std::vector<std::vector<float>> rows;
    rows.reserve(hi - at);
    for (std::size_t i = at; i < hi; ++i) rows.push_back(e.trace[i].encoding);
    const auto out = e.evaluator->forward_batch(rows);
    const float* m = out.metrics.value().data();
    metrics.insert(metrics.end(), m, m + 3 * (hi - at));
  }
  seconds = seconds_since(start);
  return metrics;
}

// --- registry hot swap under load -------------------------------------------

struct HotSwapResult {
  double seconds = 0.0;  ///< whole replay wall time
  double steady_qps = 0.0;
  double steady_p99_us = 0.0;
  double swap_qps = 0.0;
  double swap_p99_us = 0.0;
  double swap_window_s = 0.0;
  double hit_rate = 0.0;
  std::size_t in_window = 0;
  std::size_t errors = 0;  ///< must stay 0: swaps never drop a response
};

double p99_us(std::vector<double>& lat) {
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  return lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
}

/// Replays the trace through a registry-backed service (every query pinned
/// to the live generation) while a publisher thread hot-swaps the model at
/// the halfway mark. The swap window runs from publish start until 50 ms
/// after the swap lands, covering both the publish itself and the
/// cold-namespace re-warm that follows the generation flip.
HotSwapResult run_hotswap() {
  Env& e = env();
  const std::string dir =
      "/tmp/dance_bench_registry_" + std::to_string(getpid());
  mkdir(dir.c_str(), 0755);
  registry::ModelRegistry::init(dir);
  registry::ModelRegistry reg(dir, e.hw_space);
  {
    util::Rng rng(33);
    evalnet::Evaluator ev(e.arch_space.encoding_width(), e.hw_space, rng);
    (void)reg.publish("bench", ev);
  }
  registry::RegistryBackend backend;
  serve::Service::Options opts;
  opts.batch.max_batch = 1;  // single client: inline path, clean latencies
  serve::Service service(backend, opts);

  HotSwapResult out;
  std::atomic<std::size_t> progress{0};
  std::atomic<double> swap_lo{-1.0};
  std::atomic<double> swap_hi{-1.0};
  const auto start = std::chrono::steady_clock::now();

  std::thread publisher([&] {
    while (progress.load(std::memory_order_relaxed) < e.trace.size() / 2) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    swap_lo.store(seconds_since(start));
    util::Rng rng(34);
    evalnet::Evaluator ev(e.arch_space.encoding_width(), e.hw_space, rng);
    (void)reg.publish("bench", ev);
    swap_hi.store(seconds_since(start));
  });

  std::vector<double> began(e.trace.size());
  std::vector<double> lat(e.trace.size());
  for (std::size_t i = 0; i < e.trace.size(); ++i) {
    const auto q0 = std::chrono::steady_clock::now();
    began[i] = seconds_since(start);
    try {
      const registry::VersionPtr pin = reg.pin("bench");
      auto r = service.query(
          registry::ModelRegistry::make_request(pin, e.trace[i].encoding));
      benchmark::DoNotOptimize(r);
    } catch (const std::exception&) {
      ++out.errors;
    }
    lat[i] = 1e6 * seconds_since(q0);
    progress.store(i + 1, std::memory_order_relaxed);
  }
  out.seconds = seconds_since(start);
  publisher.join();
  out.hit_rate = service.stats().cache.hit_rate();

  const double lo = swap_lo.load();
  const double hi = std::max(swap_hi.load(), lo) + 0.050;
  std::vector<double> in_lat;
  std::vector<double> steady_lat;
  for (std::size_t i = 0; i < lat.size(); ++i) {
    (began[i] >= lo && began[i] < hi ? in_lat : steady_lat).push_back(lat[i]);
  }
  out.in_window = in_lat.size();
  out.swap_window_s = hi - lo;
  out.swap_qps = static_cast<double>(in_lat.size()) / out.swap_window_s;
  out.steady_qps = static_cast<double>(steady_lat.size()) /
                   std::max(1e-9, out.seconds - out.swap_window_s);
  out.swap_p99_us = p99_us(in_lat);
  out.steady_p99_us = p99_us(steady_lat);

  util::Table table({"phase", "requests", "QPS", "p99 us"});
  table.add_row({"steady state", std::to_string(steady_lat.size()),
                 util::Table::fmt(out.steady_qps, 0),
                 util::Table::fmt(out.steady_p99_us, 1)});
  table.add_row({"swap window", std::to_string(out.in_window),
                 util::Table::fmt(out.swap_qps, 0),
                 util::Table::fmt(out.swap_p99_us, 1)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("hot swap: live generation %llu after the flip, window %.0f ms, "
              "dropped/errored responses: %zu %s\n\n",
              static_cast<unsigned long long>(reg.live_generation("bench")),
              1e3 * out.swap_window_s, out.errors,
              out.errors == 0 ? "(zero-downtime swap)" : "(SWAP DROPPED WORK)");
  return out;
}

int main_comparison(const HotSwapResult& hot) {
  Env& e = env();
  const auto n = static_cast<double>(e.trace.size());

  double serial_s = 0.0;
  const auto serial_metrics = replay_serial(serial_s);
  double batched_s = 0.0;
  const auto batched_metrics = replay_batched(batched_s);

  const bool identical =
      serial_metrics.size() == batched_metrics.size() &&
      std::memcmp(serial_metrics.data(), batched_metrics.data(),
                  serial_metrics.size() * sizeof(float)) == 0;
  std::printf("batched vs serial bit-identity: %s\n",
              identical ? "OK (bitwise equal)" : "FAILED — outputs diverge");

  serve::SurrogateBackend backend(*e.evaluator);
  serve::Service::Options opts;
  opts.batch.max_batch = kChunk;
  serve::Service service(backend, opts);
  // Requests arrive in windows (as a search loop would deliver them); the
  // cache carries answers across windows, dedup collapses repeats within one.
  constexpr std::size_t kWindow = 512;
  std::vector<serve::Response> served;
  served.reserve(e.trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t at = 0; at < e.trace.size(); at += kWindow) {
    const std::size_t hi = std::min(at + kWindow, e.trace.size());
    auto window = service.query_many(
        std::span<const serve::Request>(e.trace.data() + at, hi - at));
    served.insert(served.end(), window.begin(), window.end());
  }
  const double service_s = seconds_since(start);
  const auto stats = service.stats();

  // Served answers must also match the serial ground truth bitwise.
  bool service_identical = served.size() * 3 == serial_metrics.size();
  for (std::size_t i = 0; service_identical && i < served.size(); ++i) {
    const double lat = served[i].metrics.latency_ms;
    service_identical =
        static_cast<float>(lat) == serial_metrics[3 * i];
  }
  std::printf("cached+batched vs serial agreement: %s\n\n",
              service_identical ? "OK" : "FAILED — served answers diverge");

  // Degraded mode: the same stack, but the primary sees a 10% injected
  // error rate and the resilience decorator absorbs it (retry first, fall
  // back to the bare surrogate when retries run out). Backoff is zeroed so
  // the row prices the resilience machinery, not its sleeps.
  auto injector = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::parse("backend:error=0.1"), 0xFA17);
  fault::FaultyBackend faulty(backend, injector);
  serve::ResilientBackend::Options ropts;
  ropts.retries = 3;
  ropts.backoff_us = 0;
  serve::ResilientBackend resilient_backend(faulty, &backend, ropts);
  serve::Service resilient_service(resilient_backend, opts);
  std::size_t degraded = 0;
  const auto rstart = std::chrono::steady_clock::now();
  for (std::size_t at = 0; at < e.trace.size(); at += kWindow) {
    const std::size_t hi = std::min(at + kWindow, e.trace.size());
    auto window = resilient_service.query_many(
        std::span<const serve::Request>(e.trace.data() + at, hi - at));
    for (const auto& r : window) {
      if (r.degraded) ++degraded;
    }
  }
  const double resilient_s = seconds_since(rstart);
  const auto rstats = resilient_service.stats();
  const double degraded_rate = n > 0.0 ? static_cast<double>(degraded) / n : 0.0;
  std::printf("resilient replay under 10%% injected errors: retries=%llu "
              "degraded=%zu (%.2f%% of responses)\n\n",
              static_cast<unsigned long long>(resilient_backend.stats().retries),
              degraded, 100.0 * degraded_rate);

  util::Table table({"mode", "requests", "seconds", "QPS", "speedup", "hit rate"});
  const double serial_qps = n / serial_s;
  table.add_row({"serial forward", std::to_string(e.trace.size()),
                 util::Table::fmt(serial_s, 3), util::Table::fmt(serial_qps, 0),
                 "1.00", "-"});
  table.add_row({"batched forward", std::to_string(e.trace.size()),
                 util::Table::fmt(batched_s, 3),
                 util::Table::fmt(n / batched_s, 0),
                 util::Table::fmt(serial_s / batched_s, 2), "-"});
  table.add_row({"cached+batched", std::to_string(e.trace.size()),
                 util::Table::fmt(service_s, 3),
                 util::Table::fmt(n / service_s, 0),
                 util::Table::fmt(serial_s / service_s, 2),
                 util::Table::fmt(100.0 * stats.cache.hit_rate(), 1) + "%"});
  table.add_row({"resilient+10% faults", std::to_string(e.trace.size()),
                 util::Table::fmt(resilient_s, 3),
                 util::Table::fmt(n / resilient_s, 0),
                 util::Table::fmt(serial_s / resilient_s, 2),
                 util::Table::fmt(100.0 * rstats.cache.hit_rate(), 1) + "%"});
  table.add_row({"registry+hot swap", std::to_string(e.trace.size()),
                 util::Table::fmt(hot.seconds, 3),
                 util::Table::fmt(n / hot.seconds, 0),
                 util::Table::fmt(serial_s / hot.seconds, 2),
                 util::Table::fmt(100.0 * hot.hit_rate, 1) + "%"});
  std::printf("%s\n", table.to_string().c_str());
  std::fputs(service.stats_report().c_str(), stdout);

  const double combined_speedup = serial_s / service_s;
  std::printf("\ncached+batched speedup over naive serial: %.1fx %s\n",
              combined_speedup, combined_speedup >= 5.0 ? "(>= 5x target met)"
                                                        : "(below 5x target)");

  util::CsvWriter csv(bench::data_path("serve_throughput.csv"),
                      {"mode", "requests", "unique_keys", "seconds", "qps",
                       "speedup_vs_serial", "cache_hit_rate", "degraded_rate",
                       "swap_window_qps", "swap_window_p99_us",
                       "steady_p99_us"});
  const std::string nreq = std::to_string(e.trace.size());
  const std::string nuniq = std::to_string(e.unique_keys.size());
  csv.add_row({"serial", nreq, nuniq, util::Table::fmt(serial_s, 4),
               util::Table::fmt(serial_qps, 1), "1.0", "0", "0", "0", "0",
               "0"});
  csv.add_row({"batched", nreq, nuniq, util::Table::fmt(batched_s, 4),
               util::Table::fmt(n / batched_s, 1),
               util::Table::fmt(serial_s / batched_s, 2), "0", "0", "0", "0",
               "0"});
  csv.add_row({"cached_batched", nreq, nuniq, util::Table::fmt(service_s, 4),
               util::Table::fmt(n / service_s, 1),
               util::Table::fmt(combined_speedup, 2),
               util::Table::fmt(stats.cache.hit_rate(), 3), "0", "0", "0",
               "0"});
  csv.add_row({"resilient_faulted", nreq, nuniq,
               util::Table::fmt(resilient_s, 4),
               util::Table::fmt(n / resilient_s, 1),
               util::Table::fmt(serial_s / resilient_s, 2),
               util::Table::fmt(rstats.cache.hit_rate(), 3),
               util::Table::fmt(degraded_rate, 4), "0", "0", "0"});
  csv.add_row({"registry_hotswap", nreq, nuniq,
               util::Table::fmt(hot.seconds, 4),
               util::Table::fmt(n / hot.seconds, 1),
               util::Table::fmt(serial_s / hot.seconds, 2),
               util::Table::fmt(hot.hit_rate, 3), "0",
               util::Table::fmt(hot.swap_qps, 1),
               util::Table::fmt(hot.swap_p99_us, 2),
               util::Table::fmt(hot.steady_p99_us, 2)});
  csv.flush();
  std::printf("wrote %s\n\n", bench::data_path("serve_throughput.csv").c_str());
  return (identical && service_identical) ? 0 : 1;
}

// --- inference tiers: autograd vs fused plan vs int8 ------------------------

struct TierRow {
  infer::Mode mode = infer::Mode::kAutograd;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  float calib_error = 0.0F;
  float calib_agreement = 1.0F;
};

/// Replays the trace one request at a time through a backend pinned to
/// `mode` (single-query latency is what the tiers differ most on — batching
/// already amortizes the autograd graph walk). Also answers every unique key
/// once, batched, into `unique_lat` for the ordering-agreement column.
TierRow replay_tier(infer::Mode mode, std::vector<float>& unique_lat) {
  Env& e = env();
  serve::SurrogateBackend backend(*e.evaluator, mode);
  TierRow row;
  row.mode = mode;
  std::vector<double> lat;
  lat.reserve(e.trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (const auto& req : e.trace) {
    const auto t0 = std::chrono::steady_clock::now();
    auto resp =
        backend.query_batch(std::span<const serve::Request>(&req, 1));
    benchmark::DoNotOptimize(resp);
    lat.push_back(1e6 * seconds_since(t0));
  }
  row.seconds = seconds_since(start);
  std::sort(lat.begin(), lat.end());
  row.p50_us = lat[lat.size() / 2];
  row.p95_us = lat[std::min(lat.size() - 1, (lat.size() * 95) / 100)];

  unique_lat.clear();
  unique_lat.reserve(e.unique_keys.size());
  std::vector<serve::Request> reqs;
  for (std::size_t at = 0; at < e.unique_keys.size(); at += kChunk) {
    const std::size_t hi = std::min(at + kChunk, e.unique_keys.size());
    reqs.clear();
    for (std::size_t i = at; i < hi; ++i) {
      reqs.push_back(serve::Request{e.unique_keys[i]});
    }
    for (const auto& r : backend.query_batch(reqs)) {
      unique_lat.push_back(static_cast<float>(r.metrics.latency_ms));
    }
  }
  if (backend.plan() != nullptr && mode == infer::Mode::kInt8) {
    row.calib_error = backend.plan()->calibration_error();
    row.calib_agreement = backend.plan()->calibration_agreement();
  }
  return row;
}

/// Fraction of key pairs (over the first 512 unique keys) that `got` ranks
/// in the same predicted-latency order as `ref`; ties must match ties.
double ordering_agreement(const std::vector<float>& ref,
                          const std::vector<float>& got) {
  const std::size_t k =
      std::min<std::size_t>(512, std::min(ref.size(), got.size()));
  if (k < 2) return 1.0;
  std::size_t same = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const int a = ref[i] < ref[j] ? -1 : (ref[i] > ref[j] ? 1 : 0);
      const int b = got[i] < got[j] ? -1 : (got[i] > got[j] ? 1 : 0);
      same += static_cast<std::size_t>(a == b);
      ++total;
    }
  }
  return static_cast<double>(same) / static_cast<double>(total);
}

int main_tiers() {
  Env& e = env();
  const auto n = static_cast<double>(e.trace.size());

  std::vector<float> lat_autograd;
  std::vector<float> lat_fused;
  std::vector<float> lat_int8;
  const TierRow autograd = replay_tier(infer::Mode::kAutograd, lat_autograd);
  const TierRow fused = replay_tier(infer::Mode::kFused, lat_fused);
  const TierRow int8 = replay_tier(infer::Mode::kInt8, lat_int8);

  const double agree_fused = ordering_agreement(lat_autograd, lat_fused);
  const double agree_int8 = ordering_agreement(lat_autograd, lat_int8);

  util::Table table({"tier", "seconds", "QPS", "p50 us", "p95 us",
                     "speedup", "ordering agreement"});
  const auto add = [&](const char* name, const TierRow& row, double agree) {
    table.add_row({name, util::Table::fmt(row.seconds, 3),
                   util::Table::fmt(n / row.seconds, 0),
                   util::Table::fmt(row.p50_us, 1),
                   util::Table::fmt(row.p95_us, 1),
                   util::Table::fmt(autograd.seconds / row.seconds, 2),
                   util::Table::fmt(100.0 * agree, 2) + "%"});
  };
  add("autograd", autograd, 1.0);
  add("fused", fused, agree_fused);
  add("int8", int8, agree_int8);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("int8 calibration self-check: worst error %.2f%% of column "
              "range, config agreement %.1f%%\n",
              100.0 * int8.calib_error, 100.0 * int8.calib_agreement);
  const double fused_speedup = autograd.seconds / fused.seconds;
  std::printf("fused single-query speedup over autograd: %.1fx %s\n\n",
              fused_speedup,
              fused_speedup >= 2.0 ? "(>= 2x target met)"
                                   : "(below 2x target)");

  util::CsvWriter csv(bench::data_path("infer_tiers.csv"),
                      {"tier", "requests", "seconds", "qps", "p50_us",
                       "p95_us", "speedup_vs_autograd",
                       "cost_ordering_agreement", "calib_error",
                       "calib_agreement"});
  const std::string nreq = std::to_string(e.trace.size());
  const auto row = [&](const char* name, const TierRow& r, double agree) {
    csv.add_row({name, nreq, util::Table::fmt(r.seconds, 4),
                 util::Table::fmt(n / r.seconds, 1),
                 util::Table::fmt(r.p50_us, 2), util::Table::fmt(r.p95_us, 2),
                 util::Table::fmt(autograd.seconds / r.seconds, 2),
                 util::Table::fmt(agree, 4),
                 util::Table::fmt(r.calib_error, 4),
                 util::Table::fmt(r.calib_agreement, 4)});
  };
  row("autograd", autograd, 1.0);
  row("fused", fused, agree_fused);
  row("int8", int8, agree_int8);
  csv.flush();
  std::printf("wrote %s\n\n", bench::data_path("infer_tiers.csv").c_str());
  return agree_fused == 1.0 ? 0 : 1;
}

// --- google-benchmark micros for the per-query primitives -------------------

// --- compiled cost-table artifacts: in-memory build vs mmap -----------------

long rss_kb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct ExactServeStats {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::vector<serve::Response> responses;
};

/// Single-query replay through an ExactBackend over `provider`; per-query
/// latency percentiles, and the responses for the bit-identity check.
ExactServeStats replay_exact(const arch::CostProvider& provider,
                             std::span<const serve::Request> reqs) {
  serve::ExactBackend backend(provider, accel::edap_cost());
  ExactServeStats st;
  st.responses.reserve(reqs.size());
  std::vector<double> lat_us;
  lat_us.reserve(reqs.size());
  const auto start = std::chrono::steady_clock::now();
  for (const auto& req : reqs) {
    const auto t0 = std::chrono::steady_clock::now();
    auto out = backend.query_batch({&req, 1});
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    st.responses.push_back(out[0]);
  }
  const double total_s = seconds_since(start);
  st.qps = static_cast<double>(reqs.size()) / total_s;
  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&](double q) {
    return lat_us[std::min(lat_us.size() - 1,
                           static_cast<std::size_t>(q * lat_us.size()))];
  };
  st.p50_us = pct(0.50);
  st.p99_us = pct(0.99);
  return st;
}

bool responses_bit_identical(const std::vector<serve::Response>& a,
                             const std::vector<serve::Response>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].metrics.latency_ms, &b[i].metrics.latency_ms,
                    sizeof(double)) != 0 ||
        std::memcmp(&a[i].metrics.energy_mj, &b[i].metrics.energy_mj,
                    sizeof(double)) != 0 ||
        std::memcmp(&a[i].metrics.area_mm2, &b[i].metrics.area_mm2,
                    sizeof(double)) != 0 ||
        !(a[i].config == b[i].config)) {
      return false;
    }
  }
  return true;
}

int main_cost_table() {
  Env& e = env();
  // The exact arg-min walks all ~14k configs per query; a short unique-key
  // replay is enough for stable percentiles.
  const int nq = std::min<int>(bench::scaled(128),
                               static_cast<int>(e.trace.size()));
  std::span<const serve::Request> reqs(e.trace.data(),
                                       static_cast<std::size_t>(nq));

  const auto timed_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Row 1: in-memory build, exact mode (the seed analytical path every
  // shard used to pay at startup).
  const accel::CostModel exact_model(accel::TechnologyParams{},
                                     accel::CostMode::kExact);
  long rss0 = rss_kb();
  std::unique_ptr<arch::CostTable> mem_table;
  const double build_exact_ms = timed_ms([&] {
    mem_table = std::make_unique<arch::CostTable>(e.arch_space, e.hw_space,
                                                  exact_model);
  });
  const long mem_rss_kb = rss_kb() - rss0;
  const ExactServeStats mem_stats = replay_exact(*mem_table, reqs);

  // Row 2: in-memory build, LUT-compiled model (same table shape; the
  // build sweep runs with reciprocal tables instead of divides).
  const accel::CostModel lut_model(accel::TechnologyParams{},
                                   accel::CostMode::kLut);
  double build_lut_ms = 0.0;
  {
    std::unique_ptr<arch::CostTable> lut_table;
    build_lut_ms = timed_ms([&] {
      lut_table = std::make_unique<arch::CostTable>(e.arch_space, e.hw_space,
                                                    lut_model);
    });
  }

  // Row 3: compile once to a DCTB artifact, then mmap it — the per-shard
  // startup cost drops to a load + checksum pass over shared pages.
  const std::string artifact = bench::data_path("cost_table.dctb");
  arch::save_cost_table(*mem_table, artifact);
  struct stat stbuf {};
  const long file_bytes = ::stat(artifact.c_str(), &stbuf) == 0
                              ? static_cast<long>(stbuf.st_size)
                              : -1;
  rss0 = rss_kb();
  std::unique_ptr<arch::MmapCostTable> mapped;
  const double load_ms =
      timed_ms([&] { mapped = arch::load_cost_table(artifact, e.arch_space); });
  const long map_rss_kb = rss_kb() - rss0;
  const ExactServeStats map_stats = replay_exact(*mapped, reqs);
  const bool identical =
      responses_bit_identical(mem_stats.responses, map_stats.responses);

  util::Table table({"source", "startup ms", "RSS delta KB", "file bytes",
                     "QPS", "p50 us", "p99 us"});
  table.add_row({"build (exact)", util::Table::fmt(build_exact_ms, 1),
                 std::to_string(mem_rss_kb), "-",
                 util::Table::fmt(mem_stats.qps, 0),
                 util::Table::fmt(mem_stats.p50_us, 1),
                 util::Table::fmt(mem_stats.p99_us, 1)});
  table.add_row({"build (lut)", util::Table::fmt(build_lut_ms, 1), "-", "-",
                 "-", "-", "-"});
  table.add_row({"mmap (DCTB)", util::Table::fmt(load_ms, 1),
                 std::to_string(map_rss_kb), std::to_string(file_bytes),
                 util::Table::fmt(map_stats.qps, 0),
                 util::Table::fmt(map_stats.p50_us, 1),
                 util::Table::fmt(map_stats.p99_us, 1)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("mmap answers bit-identical to in-memory build: %s "
              "(checksum %016llx)\n",
              identical ? "yes" : "NO",
              static_cast<unsigned long long>(mapped->checksum()));

  util::CsvWriter csv(bench::data_path("cost_table.csv"),
                      {"source", "cost_mode", "startup_ms", "rss_delta_kb",
                       "file_bytes", "queries", "qps", "p50_us", "p99_us",
                       "bit_identical"});
  const std::string nqs = std::to_string(nq);
  csv.add_row({"build", "exact", util::Table::fmt(build_exact_ms, 2),
               std::to_string(mem_rss_kb), "0", nqs,
               util::Table::fmt(mem_stats.qps, 1),
               util::Table::fmt(mem_stats.p50_us, 2),
               util::Table::fmt(mem_stats.p99_us, 2), "1"});
  csv.add_row({"build", "lut", util::Table::fmt(build_lut_ms, 2), "-", "0",
               "0", "-", "-", "-", "-"});
  csv.add_row({"mmap", "exact", util::Table::fmt(load_ms, 2),
               std::to_string(map_rss_kb), std::to_string(file_bytes), nqs,
               util::Table::fmt(map_stats.qps, 1),
               util::Table::fmt(map_stats.p50_us, 2),
               util::Table::fmt(map_stats.p99_us, 2), identical ? "1" : "0"});
  csv.flush();
  std::printf("wrote %s\n\n", bench::data_path("cost_table.csv").c_str());
  return identical ? 0 : 1;
}

void BM_SerialForwardDeterministic(benchmark::State& state) {
  Env& e = env();
  tensor::Variable row(tensor::Tensor::from(
      {1, static_cast<int>(e.unique_keys[0].size())}, e.unique_keys[0]));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluator->forward_deterministic(row));
  }
}
BENCHMARK(BM_SerialForwardDeterministic)->Unit(benchmark::kMicrosecond);

void BM_ForwardBatch64(benchmark::State& state) {
  Env& e = env();
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < kChunk; ++i) {
    rows.push_back(e.unique_keys[static_cast<std::size_t>(i) %
                                 e.unique_keys.size()]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluator->forward_batch(rows));
  }
  state.SetItemsProcessed(state.iterations() * kChunk);
}
BENCHMARK(BM_ForwardBatch64)->Unit(benchmark::kMicrosecond);

void BM_ServiceQueryCacheHit(benchmark::State& state) {
  Env& e = env();
  static serve::SurrogateBackend backend(*e.evaluator);
  static serve::Service service(backend, [] {
    serve::Service::Options o;
    o.batch.max_batch = 1;  // inline: isolate the cache-hit path
    return o;
  }());
  const serve::Request req{e.unique_keys[0]};
  (void)service.query(req);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.query(req));
  }
}
BENCHMARK(BM_ServiceQueryCacheHit)->Unit(benchmark::kMicrosecond);

void BM_CacheGetHit(benchmark::State& state) {
  Env& e = env();
  serve::ShardedLruCache cache(1024, 8);
  const auto key = serve::canonical_key(e.unique_keys[0]);
  cache.put(key, serve::Response{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key));
  }
}
BENCHMARK(BM_CacheGetHit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  if (dance::util::env_string("DANCE_BENCH_ONLY", "") == "costtable") {
    std::printf("== exact ground truth: in-memory CostTable vs mmap DCTB "
                "artifact ==\n\n");
    return main_cost_table();
  }
  std::printf("== dance::serve throughput: serial vs batched vs cached+batched "
              "==\n");
  std::printf("trace: %d requests over %d unique keys (~87%% repeats), "
              "chunk/max_batch %d, window 512.\n\n",
              dance::bench::scaled(10000),
              std::max(1, dance::bench::scaled(10000) / 8), kChunk);
  std::printf("== registry hot swap under load: publish at the halfway mark "
              "==\n");
  std::printf("pinned single-query replay; swap window = publish + 50 ms "
              "re-warm.\n\n");
  const HotSwapResult hot = run_hotswap();
  const int rc = main_comparison(hot);
  std::printf("== surrogate inference tiers: autograd vs fused plan vs int8 "
              "(DANCE_INFER) ==\n");
  std::printf("single-query replay of the same trace per tier; ordering "
              "agreement vs autograd over 512 unique keys.\n\n");
  const int tier_rc = main_tiers();
  std::printf("== exact ground truth: in-memory CostTable vs mmap DCTB "
              "artifact ==\n\n");
  const int ct_rc = main_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc != 0 ? rc : (tier_rc != 0 ? tier_rc : ct_rc);
}
