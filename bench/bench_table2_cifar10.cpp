// Reproduction of Table 2: "Performance of DANCE on CIFAR-10".
//
// For each hardware cost function (EDAP, Eq. 4; linear with lambda_L=4.1,
// lambda_E=4.8, lambda_A=1.0, Eq. 3) this harness runs:
//   - Baseline (No penalty)   + post-hoc exact HW generation
//   - Baseline (Flops penalty)+ post-hoc exact HW generation
//   - DANCE w/o feature forwarding
//   - DANCE w/ feature forwarding, accuracy-oriented  (-A, small lambda2)
//   - DANCE w/ feature forwarding, efficiency-oriented (-B, large lambda2)
//
// The CIFAR-10 supernet training is replaced by the synthetic classification
// stand-in (DESIGN.md §2); hardware numbers come from the real backbone
// convolution shapes. Expected shape: DANCE matches the baselines' accuracy
// within ~1%p while cutting latency/EDAP by large factors; -B trades a
// little accuracy for further cost reduction.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"
#include "search/dance.h"
#include "search/design_points.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;
using search::CostKind;

struct Setup {
  data::SyntheticTask task;
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table{arch_space, hw_space, model};
  nas::SuperNetConfig net_config;
};

Setup make_setup() {
  Setup s;
  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = dance::bench::scaled(3072);
  dcfg.val_samples = 1024;
  s.task = data::make_synthetic_task(dcfg);
  s.net_config.input_dim = dcfg.input_dim;
  s.net_config.num_classes = dcfg.num_classes;
  s.net_config.width = 48;
  s.net_config.num_blocks = s.arch_space.num_searchable();
  return s;
}

/// Train one evaluator (hwgen + cost nets) on ground truth for `kind`.
evalnet::Evaluator train_evaluator(const Setup& s, CostKind kind, bool ff,
                                   util::Rng& rng) {
  evalnet::Evaluator::Options eopts;
  eopts.cost.feature_forwarding = ff;
  eopts.cost.hidden_dim = 192;
  evalnet::Evaluator evaluator(s.arch_space.encoding_width(), s.hw_space, rng,
                               eopts);
  auto ds = evalnet::generate_evaluator_dataset(
      s.table, search::make_cost_fn(kind), dance::bench::scaled(8000), rng);
  auto [train, val] = evalnet::split_dataset(ds, 0.85);
  evalnet::TrainOptions hw_opts;
  hw_opts.epochs = dance::bench::scaled(20);
  hw_opts.lr = 0.05F;
  evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
  evalnet::TrainOptions cost_opts;
  cost_opts.epochs = dance::bench::scaled(25);
  cost_opts.lr = 4e-3F;
  cost_opts.batch_size = 128;
  evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  return evaluator;
}

std::vector<std::string> row(const std::string& name,
                             const search::SearchOutcome& out) {
  return {name, util::Table::fmt(out.val_accuracy_pct, 1),
          util::Table::fmt(out.metrics.latency_ms, 3),
          util::Table::fmt(out.metrics.energy_mj, 3),
          util::Table::fmt(out.metrics.edap(), 3),
          util::Table::fmt(out.search_seconds, 0) + "s"};
}

void run_cost_kind(const Setup& s, CostKind kind) {
  const int search_epochs = dance::bench::scaled(12);
  const int retrain_epochs = dance::bench::scaled(25);
  std::printf("-- Cost function: %s --\n", search::to_string(kind));

  util::Table t({"Method", "Acc.(%)", "Latency(ms)", "Energy(mJ)", "EDAP",
                 "Search"});

  // Baselines (hardware-oblivious search + post-hoc HW generation).
  {
    search::BaselineOptions opts;
    opts.search_epochs = search_epochs;
    opts.retrain.epochs = retrain_epochs;
    opts.cost_kind = kind;
    t.add_row(row("Baseline (No penalty) + HW",
                  search::run_baseline(s.task, s.table, s.net_config, opts)));
    opts.flops_weight = 0.15F;
    t.add_row(row("Baseline (Flops penalty) + HW",
                  search::run_baseline(s.task, s.table, s.net_config, opts)));
  }

  // DANCE variants. As in the paper (§4.3), -A and -B are design points
  // picked from a lambda2 sweep: -A the most accurate, -B the cheapest
  // within a small accuracy budget of -A.
  auto run_dance = [&](evalnet::Evaluator& evaluator, float lambda2,
                       std::uint64_t seed) {
    search::DanceOptions opts;
    opts.search_epochs = search_epochs;
    opts.warmup_epochs = std::max(1, search_epochs / 4);
    opts.cost_kind = kind;
    opts.lambda2 = lambda2;
    opts.retrain.epochs = retrain_epochs;
    opts.seed = seed;
    search::DanceSearch dance(s.task, s.table, evaluator, s.net_config, opts);
    return dance.run();
  };

  // lambda2 grids per cost kind: EDAP is O(0.05-0.3), linear cost is O(5-10).
  const std::vector<float> grid =
      kind == CostKind::kEdap ? std::vector<float>{1.0F, 2.5F, 4.0F, 6.0F}
                              : std::vector<float>{0.04F, 0.1F, 0.25F, 0.5F};
  const accel::HwCostFn report_fn = search::make_cost_fn(kind);

  {
    util::Rng rng(31);
    evalnet::Evaluator ev = train_evaluator(s, kind, /*ff=*/false, rng);
    t.add_row(row("DANCE (w/o FF)", run_dance(ev, grid[1], 31)));
  }
  {
    util::Rng rng(32);
    evalnet::Evaluator ev = train_evaluator(s, kind, /*ff=*/true, rng);
    std::vector<search::SearchOutcome> sweep;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      sweep.push_back(run_dance(ev, grid[i], 33 + i));
    }
    // -A/-B selection as in §4.3 (the paper allows a 1%p accuracy drop for
    // -B; our retrained accuracies carry a little more noise, hence 2.5).
    const search::DesignPoints points =
        search::select_design_points(sweep, report_fn, 2.5);
    t.add_row(row("DANCE (w/ FF)-A", points.accuracy_oriented));
    t.add_row(row("DANCE (w/ FF)-B", points.efficiency_oriented));
  }

  std::printf("%s\n", t.to_string().c_str());
}

void run_table2() {
  std::printf("== Table 2: Performance of DANCE on CIFAR-10 (synthetic "
              "stand-in task) ==\n\n");
  Setup s = make_setup();
  run_cost_kind(s, CostKind::kEdap);
  run_cost_kind(s, CostKind::kLinear);
}

/// Microbenchmark: one DANCE architecture-step loss evaluation through the
/// frozen evaluator (the inner-loop cost the differentiable method pays
/// instead of training a candidate).
void BM_EvaluatorForwardBackward(benchmark::State& state) {
  Setup s = make_setup();
  util::Rng rng(5);
  evalnet::Evaluator::Options eopts;
  eopts.cost.hidden_dim = 192;
  evalnet::Evaluator evaluator(s.arch_space.encoding_width(), s.hw_space, rng,
                               eopts);
  evaluator.set_frozen(true);
  evaluator.set_training(false);
  tensor::Variable enc(
      tensor::Tensor::full({1, s.arch_space.encoding_width()}, 1.0F / 7.0F),
      true);
  for (auto _ : state) {
    enc.zero_grad();
    const auto out = evaluator.forward(enc, rng);
    const auto cost = search::hw_cost_variable(out.metrics, CostKind::kEdap);
    tensor::ops::sum_all(cost).backward();
    benchmark::DoNotOptimize(enc.grad());
  }
}
BENCHMARK(BM_EvaluatorForwardBackward)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
