// Reproduction of the §4.2 in-text speed claim: "the inference time for the
// hardware generation network takes about 0.5ms with a single GPU, while the
// exhaustive search takes about 112s using 48 threads".
//
// We time, on the same machine:
//   - exhaustive hardware generation with direct cost-model evaluation,
//     serial and on the runtime thread pool,
//   - exhaustive generation through the per-layer cost LUT (serial + pool),
//   - coordinate-descent hardware generation,
//   - hardware generation *network* inference.
// Expected shape: the learned generator is orders of magnitude faster than
// the exact search, which is the paper's argument for making it a network;
// the pool-parallel exact search beats the serial one by ~#lanes on
// machines with hardware_concurrency() > 1.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "arch/cost_table.h"
#include "evalnet/evaluator.h"
#include "evalnet/hwgen_net.h"
#include "hwgen/coordinate_descent.h"
#include "hwgen/exhaustive.h"
#include "infer/plan.h"
#include "runtime/thread_pool.h"

namespace {

using namespace dance;

struct Env {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  std::unique_ptr<arch::CostTable> table;
  util::Rng rng{9};
  accel::HwCostFn cost_fn = accel::edap_cost();

  Env() { table = std::make_unique<arch::CostTable>(arch_space, hw_space, model); }
};

Env& env() {
  static Env e;
  return e;
}

void BM_ExhaustiveDirect(benchmark::State& state) {
  Env& e = env();
  hwgen::ExhaustiveSearch search(e.hw_space, e.model);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.run(layers, e.cost_fn));
  }
}
BENCHMARK(BM_ExhaustiveDirect)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveDirectSerial(benchmark::State& state) {
  Env& e = env();
  hwgen::ExhaustiveSearch search(e.hw_space, e.model);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  const runtime::SerialGuard serial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.run(layers, e.cost_fn));
  }
}
BENCHMARK(BM_ExhaustiveDirectSerial)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveViaLut(benchmark::State& state) {
  Env& e = env();
  const arch::Architecture a = e.arch_space.random(e.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.table->optimal(a, e.cost_fn));
  }
}
BENCHMARK(BM_ExhaustiveViaLut)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveViaLutSerial(benchmark::State& state) {
  Env& e = env();
  const arch::Architecture a = e.arch_space.random(e.rng);
  const runtime::SerialGuard serial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.table->optimal(a, e.cost_fn));
  }
}
BENCHMARK(BM_ExhaustiveViaLutSerial)->Unit(benchmark::kMillisecond);

void BM_EvaluateAllConfigs(benchmark::State& state) {
  Env& e = env();
  hwgen::ExhaustiveSearch search(e.hw_space, e.model);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.evaluate_all(layers));
  }
}
BENCHMARK(BM_EvaluateAllConfigs)->Unit(benchmark::kMillisecond);

void BM_EvaluateAllConfigsSerial(benchmark::State& state) {
  Env& e = env();
  hwgen::ExhaustiveSearch search(e.hw_space, e.model);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  const runtime::SerialGuard serial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.evaluate_all(layers));
  }
}
BENCHMARK(BM_EvaluateAllConfigsSerial)->Unit(benchmark::kMillisecond);

// --- DANCE_COST=exact vs =lut on the analytical hot path --------------------
// The LUT-compiled model answers the same batched evaluation with divides
// replaced by reciprocal-table multiplies (accuracy bound: docs/cost_table.md).

void BM_NetworkCostExact(benchmark::State& state) {
  Env& e = env();
  const accel::CostModel exact(e.model.tech(), accel::CostMode::kExact);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  const accel::AcceleratorConfig cfg = e.hw_space.config_at(e.hw_space.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact.network_cost(cfg, layers));
  }
}
BENCHMARK(BM_NetworkCostExact)->Unit(benchmark::kMicrosecond);

void BM_NetworkCostLut(benchmark::State& state) {
  Env& e = env();
  const accel::CostModel lut(e.model.tech(), accel::CostMode::kLut);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  const accel::AcceleratorConfig cfg = e.hw_space.config_at(e.hw_space.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.network_cost(cfg, layers));
  }
}
BENCHMARK(BM_NetworkCostLut)->Unit(benchmark::kMicrosecond);

void BM_LayerCostBatch(benchmark::State& state) {
  Env& e = env();
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  const accel::AcceleratorConfig cfg = e.hw_space.config_at(e.hw_space.size() / 2);
  std::vector<accel::LayerCost> out(layers.size());
  for (auto _ : state) {
    e.model.layer_cost_batch(cfg, layers, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerCostBatch)->Unit(benchmark::kMicrosecond);

void BM_CostTableBuildExact(benchmark::State& state) {
  Env& e = env();
  const accel::CostModel exact(e.model.tech(), accel::CostMode::kExact);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::build_cost_table(e.arch_space, e.hw_space, exact));
  }
}
BENCHMARK(BM_CostTableBuildExact)->Unit(benchmark::kMillisecond);

void BM_CostTableBuildLut(benchmark::State& state) {
  Env& e = env();
  const accel::CostModel lut(e.model.tech(), accel::CostMode::kLut);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::build_cost_table(e.arch_space, e.hw_space, lut));
  }
}
BENCHMARK(BM_CostTableBuildLut)->Unit(benchmark::kMillisecond);

void BM_CoordinateDescent(benchmark::State& state) {
  Env& e = env();
  hwgen::CoordinateDescent cd(e.hw_space, e.model, /*restarts=*/4);
  const auto layers = e.arch_space.lower(e.arch_space.random(e.rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cd.run(layers, e.cost_fn));
  }
}
BENCHMARK(BM_CoordinateDescent)->Unit(benchmark::kMillisecond);

void BM_HwGenNetInference(benchmark::State& state) {
  Env& e = env();
  evalnet::HwGenNet net(e.arch_space.encoding_width(), e.hw_space, e.rng);
  net.set_training(false);
  const arch::Architecture a = e.arch_space.random(e.rng);
  tensor::Variable enc(tensor::Tensor::from(
      {1, e.arch_space.encoding_width()}, e.arch_space.encode(a)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(enc));
  }
}
BENCHMARK(BM_HwGenNetInference)->Unit(benchmark::kMillisecond);

/// The frozen-inference plan (dance::infer) answering the same single-row
/// query the autograd paths above answer: full evaluator forward (hwgen
/// trunk + argmax decode + cost trunk) without building a graph.
struct PlanEnv {
  std::unique_ptr<evalnet::Evaluator> evaluator;
  infer::Plan plan;
  infer::Arena arena;
  std::vector<float> row;
  std::vector<float> metrics;
  std::vector<float> hw;

  PlanEnv() {
    Env& e = env();
    util::Rng rng(9);
    evaluator = std::make_unique<evalnet::Evaluator>(
        e.arch_space.encoding_width(), e.hw_space, rng);
    evaluator->set_frozen(true);
    evaluator->set_training(false);
    plan = infer::Plan::compile(*evaluator);
    row = e.arch_space.encode(e.arch_space.random(rng));
    std::vector<std::vector<float>> calib;
    for (int i = 0; i < 64; ++i) {
      calib.push_back(e.arch_space.encode(e.arch_space.random(rng)));
    }
    plan.calibrate(calib);
    metrics.resize(3);
    hw.resize(static_cast<std::size_t>(plan.hw_width()));
  }
};

PlanEnv& plan_env() {
  static PlanEnv e;
  return e;
}

void BM_PlanFusedInference(benchmark::State& state) {
  PlanEnv& p = plan_env();
  for (auto _ : state) {
    p.plan.run(p.row.data(), 1, p.metrics.data(), p.hw.data(), p.arena,
               infer::Mode::kFused);
    benchmark::DoNotOptimize(p.metrics.data());
  }
}
BENCHMARK(BM_PlanFusedInference)->Unit(benchmark::kMillisecond);

void BM_PlanInt8Inference(benchmark::State& state) {
  PlanEnv& p = plan_env();
  for (auto _ : state) {
    p.plan.run(p.row.data(), 1, p.metrics.data(), p.hw.data(), p.arena,
               infer::Mode::kInt8);
    benchmark::DoNotOptimize(p.metrics.data());
  }
}
BENCHMARK(BM_PlanInt8Inference)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== §4.2 in-text: hardware generation speed, learned network vs "
              "exact search ==\n");
  std::printf("paper: network inference ~0.5 ms vs exhaustive search ~112 s "
              "(48 threads).\n");
  std::printf("runtime pool lanes: %d (*Serial variants force inline "
              "execution; the ratio is the pool speedup).\n\n",
              dance::runtime::global_pool().num_threads());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
