// Reproduction of Table 4: "Performance of DANCE on ImageNet".
//
// The ImageNet experiment uses the scaled-up backbone (224x224 input, wider
// channels) and a harder synthetic stand-in task (more classes, more
// clusters). Expected shape (paper): DANCE w/ FF trades ~2%p accuracy for
// ~20% latency, ~15% energy and ~33% EDAP reduction versus the hardware-
// oblivious baseline + post-hoc hardware generation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"
#include "search/dance.h"
#include "search/design_points.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;
using search::CostKind;

void run_table4() {
  std::printf("== Table 4: Performance of DANCE on ImageNet (synthetic "
              "stand-in task, scaled-up backbone) ==\n\n");

  // Harder task standing in for ImageNet: more classes, more structure.
  data::SyntheticTaskConfig dcfg;
  dcfg.input_dim = 24;
  dcfg.num_classes = 20;
  dcfg.clusters_per_class = 8;
  dcfg.noise = 0.9F;
  dcfg.warp = 1.6F;
  dcfg.train_samples = dance::bench::scaled(4096);
  dcfg.val_samples = 1024;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::imagenet_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = 64;
  net_config.num_blocks = arch_space.num_searchable();

  const int search_epochs = dance::bench::scaled(12);
  const int retrain_epochs = dance::bench::scaled(25);
  const CostKind kind = CostKind::kEdap;

  util::Table t({"Method", "Acc.(%)", "Latency(ms)", "Energy(mJ)", "EDAP"});

  // Baseline + post-hoc hardware generation.
  double baseline_acc = 0.0;
  {
    search::BaselineOptions opts;
    opts.search_epochs = search_epochs;
    opts.retrain.epochs = retrain_epochs;
    opts.cost_kind = kind;
    const auto out = search::run_baseline(task, table, net_config, opts);
    baseline_acc = out.val_accuracy_pct;
    t.add_row({"Baseline + HW", util::Table::fmt(out.val_accuracy_pct, 1),
               util::Table::fmt(out.metrics.latency_ms, 3),
               util::Table::fmt(out.metrics.energy_mj, 3),
               util::Table::fmt(out.metrics.edap(), 2)});
  }

  // DANCE w/ feature forwarding.
  {
    util::Rng rng(61);
    evalnet::Evaluator::Options eopts;
    eopts.cost.hidden_dim = 192;
    evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng,
                                 eopts);
    auto ds = evalnet::generate_evaluator_dataset(
        table, search::make_cost_fn(kind), dance::bench::scaled(8000), rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.85);
    evalnet::TrainOptions hw_opts;
    hw_opts.epochs = dance::bench::scaled(20);
    hw_opts.lr = 0.05F;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
    evalnet::TrainOptions cost_opts;
    cost_opts.epochs = dance::bench::scaled(25);
    cost_opts.lr = 4e-3F;
    evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);

    // Small lambda2 sweep (ImageNet-backbone EDAPs are ~100x CIFAR's);
    // report the cheapest design within a few points of the baseline's
    // accuracy, mirroring the paper's ~2%p concession.
    std::vector<search::SearchOutcome> sweep;
    for (const float l2 : {0.002F, 0.006F, 0.02F}) {
      search::DanceOptions opts;
      opts.search_epochs = search_epochs;
      opts.warmup_epochs = std::max(1, search_epochs / 4);
      opts.cost_kind = kind;
      opts.lambda2 = l2;
      opts.retrain.epochs = retrain_epochs;
      opts.seed = 61 + static_cast<std::uint64_t>(l2 * 100);
      search::DanceSearch dance_search(task, table, evaluator, net_config, opts);
      sweep.push_back(dance_search.run());
    }
    const accel::HwCostFn fn = search::make_cost_fn(kind);
    // Fallback if nothing lands within the accuracy budget: the most
    // accurate point of the sweep.
    search::SearchOutcome out =
        search::select_design_points(sweep, fn, 2.5).accuracy_oriented;
    for (const auto& o : sweep) {
      if (o.val_accuracy_pct + 3.0 >= baseline_acc &&
          fn(o.metrics) < fn(out.metrics)) {
        out = o;
      }
    }
    t.add_row({"DANCE (w/ FF)", util::Table::fmt(out.val_accuracy_pct, 1),
               util::Table::fmt(out.metrics.latency_ms, 3),
               util::Table::fmt(out.metrics.energy_mj, 3),
               util::Table::fmt(out.metrics.edap(), 2)});
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper shape: 70.6%% / 10.3ms / 43.0mJ / 1212.6 baseline vs "
              "68.7%% / 8.1ms / 36.3mJ / 808.3 DANCE.\n\n");
}

/// Microbenchmark: cost-model evaluation of the full ImageNet-backbone
/// network on one accelerator configuration.
void BM_ImagenetNetworkCost(benchmark::State& state) {
  arch::ArchSpace space(arch::imagenet_backbone());
  accel::CostModel model;
  util::Rng rng(3);
  const auto layers = space.lower(space.random(rng));
  const accel::AcceleratorConfig cfg{16, 16, 32,
                                     accel::Dataflow::kRowStationary};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.network_cost(cfg, layers));
  }
}
BENCHMARK(BM_ImagenetNetworkCost)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
