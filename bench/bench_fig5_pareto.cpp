// Reproduction of Figure 5: the Error-EDAP plot.
//
// Sweeps the hardware-cost weight (lambda2 for DANCE, the FLOPs-penalty
// weight for the baseline) and reports (validation error, EDAP) pairs for
// every searched design. Expected shape (paper): DANCE's points dominate the
// baseline's — at matched error DANCE has clearly lower EDAP, and pushing
// the hyper-parameter toward cost gives DANCE a much better frontier.
//
// Points are printed as a table and written to bench/data/fig5_error_edap.csv
// (override the directory with DANCE_BENCH_DATA_DIR) for external plotting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/cost_table.h"
#include "evalnet/trainer.h"
#include "search/baselines.h"
#include "search/dance.h"
#include "search/pareto.h"
#include "util/csv.h"
#include "util/table.h"

#include "bench_common.h"

namespace {

using namespace dance;
using search::CostKind;

void run_fig5() {
  std::printf("== Figure 5: Error-EDAP trade-off (lower-left is better) ==\n\n");

  data::SyntheticTaskConfig dcfg;
  dcfg.train_samples = dance::bench::scaled(3072);
  dcfg.val_samples = 1024;
  const data::SyntheticTask task = data::make_synthetic_task(dcfg);

  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);

  nas::SuperNetConfig net_config;
  net_config.input_dim = dcfg.input_dim;
  net_config.num_classes = dcfg.num_classes;
  net_config.width = 48;
  net_config.num_blocks = arch_space.num_searchable();

  const int search_epochs = dance::bench::scaled(12);
  const int retrain_epochs = dance::bench::scaled(25);

  util::Table t({"Series", "Hyperparam", "Error(%)", "EDAP"});
  const std::string csv_path = dance::bench::data_path("fig5_error_edap.csv");
  util::CsvWriter csv(csv_path, {"series", "hyperparam", "error_pct", "edap"});

  // --- Baseline series: FLOPs-penalty sweep (incl. 0 = no penalty). ---
  for (const float fw : {0.0F, 0.1F, 0.25F, 0.6F}) {
    search::BaselineOptions opts;
    opts.search_epochs = search_epochs;
    opts.retrain.epochs = retrain_epochs;
    opts.flops_weight = fw;
    opts.cost_kind = CostKind::kEdap;
    opts.seed = 17 + static_cast<std::uint64_t>(fw * 10);
    const auto out = search::run_baseline(task, table, net_config, opts);
    const double err = 100.0 - out.val_accuracy_pct;
    t.add_row({"Baseline", util::Table::fmt(fw, 1), util::Table::fmt(err, 2),
               util::Table::fmt(out.metrics.edap(), 3)});
    csv.add_row({"baseline", util::Table::fmt(fw, 2), util::Table::fmt(err, 3),
                 util::Table::fmt(out.metrics.edap(), 5)});
  }

  // --- DANCE series: lambda2 sweep with one shared evaluator. ---
  util::Rng rng(23);
  evalnet::Evaluator::Options eopts;
  eopts.cost.hidden_dim = 192;
  evalnet::Evaluator evaluator(arch_space.encoding_width(), hw_space, rng, eopts);
  {
    auto ds = evalnet::generate_evaluator_dataset(
        table, search::make_cost_fn(CostKind::kEdap),
        dance::bench::scaled(8000), rng);
    auto [train, val] = evalnet::split_dataset(ds, 0.85);
    evalnet::TrainOptions hw_opts;
    hw_opts.epochs = dance::bench::scaled(20);
    hw_opts.lr = 0.05F;
    evalnet::train_hwgen_net(evaluator.hwgen_net(), train, val, hw_opts);
    evalnet::TrainOptions cost_opts;
    cost_opts.epochs = dance::bench::scaled(25);
    cost_opts.lr = 4e-3F;
    evalnet::train_cost_net(evaluator.cost_net(), train, val, cost_opts);
  }
  for (const float l2 : {1.0F, 2.5F, 4.0F, 6.0F, 10.0F}) {
    search::DanceOptions opts;
    opts.search_epochs = search_epochs;
    opts.warmup_epochs = std::max(1, search_epochs / 4);
    opts.cost_kind = CostKind::kEdap;
    opts.lambda2 = l2;
    opts.retrain.epochs = retrain_epochs;
    opts.seed = 29 + static_cast<std::uint64_t>(l2);
    search::DanceSearch dance_search(task, table, evaluator, net_config, opts);
    const auto out = dance_search.run();
    const double err = 100.0 - out.val_accuracy_pct;
    t.add_row({"DANCE", util::Table::fmt(l2, 1), util::Table::fmt(err, 2),
               util::Table::fmt(out.metrics.edap(), 3)});
    csv.add_row({"dance", util::Table::fmt(l2, 2), util::Table::fmt(err, 3),
                 util::Table::fmt(out.metrics.edap(), 5)});
  }
  csv.flush();

  std::printf("%s\n", t.to_string().c_str());
  std::printf("data written to %s\n", csv_path.c_str());
  std::printf("paper shape: at matched error DANCE's EDAP is far lower; its "
              "frontier dominates the baseline's.\n\n");

  // --- Multi-objective mode: one Pareto co-search over the same evaluator,
  // emitting the 4-objective front (search/pareto.h). ---
  std::printf("== Pareto front: one-run multi-objective co-search ==\n\n");
  {
    search::ParetoOptions popts;
    popts.base.search_epochs = search_epochs;
    popts.base.warmup_epochs = std::max(1, search_epochs / 4);
    popts.base.retrain.epochs = retrain_epochs;
    popts.base.seed = 31;
    const std::vector<float> ladder = {0.5F, 1.0F, 2.5F, 4.0F, 6.0F, 10.0F};
    popts.sweep = search::lambda2_sweep(ladder);
    const search::ParetoResult front =
        search::ParetoCoSearch(task, table, evaluator, net_config, popts)
            .run();
    util::Table pt({"", "lambda2", "Error(%)", "Lat(ms)", "E(mJ)",
                    "Area(mm2)"});
    for (const auto& p : front.points) {
      pt.add_row({p.on_front ? "front" : "",
                  util::Table::fmt(p.scalarization.lambda2, 1),
                  util::Table::fmt(p.outcome.error_pct(), 2),
                  util::Table::fmt(p.outcome.metrics.latency_ms, 3),
                  util::Table::fmt(p.outcome.metrics.energy_mj, 3),
                  util::Table::fmt(p.outcome.metrics.area_mm2, 2)});
    }
    std::printf("%s\n", pt.to_string().c_str());
    const std::string front_csv = dance::bench::data_path("pareto_front.csv");
    search::write_front_csv(front_csv, front);
    std::printf("front data written to %s\n", front_csv.c_str());
    const std::string verify_err =
        search::verify_front(front, table, popts.base.constraints);
    std::printf("front verification: %s\n\n",
                verify_err.empty() ? "ok" : verify_err.c_str());
  }

  // --- Table-3-style diversity comparison: history-penalty restarts vs
  // plain multi-seed restarts. ---
  std::printf("== Restart diversity: history penalty vs multi-seed ==\n\n");
  {
    search::RestartOptions ropts;
    ropts.base.search_epochs = std::max(2, search_epochs / 2);
    ropts.base.warmup_epochs = 1;
    ropts.base.retrain.epochs = std::max(2, retrain_epochs / 4);
    ropts.base.seed = 37;
    ropts.restarts = dance::bench::scaled(4);
    util::Table rt({"Series", "DistinctArch", "DistinctHW", "MeanArchDist",
                    "FrontSize"});
    for (const bool history : {false, true}) {
      ropts.history = history;
      const auto r =
          search::run_restarts(task, table, evaluator, net_config, ropts);
      rt.add_row({history ? "history-penalty" : "multi-seed",
                  std::to_string(r.distinct_architectures),
                  std::to_string(r.distinct_hardware),
                  util::Table::fmt(r.mean_pairwise_arch_distance, 3),
                  std::to_string(r.front.size())});
    }
    std::printf("%s\n", rt.to_string().c_str());
    std::printf("expected shape: the history series visits more distinct "
                "(arch, HW) regions across restarts.\n\n");
  }
}

/// Microbenchmark: one full post-search exact hardware generation (the
/// one-time cost DANCE pays after its gradient search).
void BM_PostSearchHwGeneration(benchmark::State& state) {
  arch::ArchSpace arch_space(arch::cifar10_backbone());
  hwgen::HwSearchSpace hw_space;
  accel::CostModel model;
  arch::CostTable table(arch_space, hw_space, model);
  util::Rng rng(2);
  const arch::Architecture a = arch_space.random(rng);
  const auto fn = accel::edap_cost();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.optimal(a, fn));
  }
}
BENCHMARK(BM_PostSearchHwGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
