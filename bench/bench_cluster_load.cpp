// Open-loop load generator for the sharded serve cluster.
//
// Spins up N in-process shard servers (exact backend, --small hardware
// space) on unix sockets, then drives them with Poisson arrivals at a sweep
// of target QPS points, measuring client-observed latency from each
// request's *scheduled* arrival time — the open-loop discipline, so queueing
// delay shows up in p99 instead of silently throttling the offered load.
//
// Routing is client-side by default: every load thread embeds the same
// consistent-hash ring the Router uses and dials shards directly (a
// legitimate production topology — the ring is a pure function of the shard
// set, so clients and routers always agree). A router-relay sweep would add
// one hop; the direct sweep isolates shard capacity.
//
// Two workloads per shard count:
//   cached  P unique keys replayed (the NAS search-loop regime) — after a
//           warmup pass every query is a cache hit; per-request cost is
//           parse + cache probe + socket turnaround.
//   miss    every request a fresh key — each query rides the shard's
//           micro-batcher (DANCE_SERVE_MAX_WAIT_US deadline), so a shard is
//           concurrency-limited and capacity scales with the shard count
//           even when cores are scarce.
//
// Writes bench/data/cluster_load.csv:
//   workload,shards,target_qps,achieved_qps,p50_us,p99_us
// and prints the 2-shard/1-shard aggregate ratio at the top target (the
// >=2x scaling check; CPU-bound workloads need >= 2 free cores to show it).
//
// DANCE_BENCH_SCALE scales the per-point durations and the target sweep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "arch/cost_table.h"
#include "bench_common.h"
#include "cluster/ring.h"
#include "cluster/shard.h"
#include "net/client.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace dance;
using Clock = std::chrono::steady_clock;

constexpr int kClientThreads = 8;
constexpr int kCachedKeyPool = 256;

double us_since(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// One in-process shard: exact backend over the tiny hardware space (the
/// CI-smoke configuration) behind a ShardServer on a unix socket.
struct Shard {
  arch::ArchSpace arch_space{arch::cifar10_backbone()};
  hwgen::HwSearchSpace hw_space{{.pe_min = 8, .pe_max = 12, .rf_min = 8,
                                 .rf_max = 32, .rf_step = 8}};
  accel::CostModel model;  ///< CostTable keeps a reference
  arch::CostTable table{arch_space, hw_space, model};
  serve::ExactBackend backend{table, accel::edap_cost()};
  serve::Service service;
  cluster::ShardServer server;
  net::Endpoint endpoint;

  explicit Shard(int id)
      : service(backend),
        server(service, arch_space, cluster::ShardServer::Options{}) {
    const std::string path = "/tmp/dance_bench_" + std::to_string(getpid()) +
                             "_shard" + std::to_string(id) + ".sock";
    endpoint = server.start(net::Endpoint::unix_path(path));
  }
};

/// Pre-rendered request lines ("arch" form: short payloads) plus the shard
/// each one routes to under the ring — computed once, not per send.
struct Workload {
  std::vector<std::string> lines;
  std::vector<int> shard_of;
};

Workload make_workload(const arch::ArchSpace& space, const cluster::HashRing& ring,
                       std::size_t n, std::size_t unique_pool,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t pool = std::min(n, unique_pool);
  std::vector<std::string> pool_lines;
  std::vector<int> pool_shard;
  pool_lines.reserve(pool);
  for (std::size_t k = 0; k < pool; ++k) {
    const arch::Architecture a = space.random(rng);
    std::string line = "{\"id\": " + std::to_string(k) + ", \"arch\": [";
    for (std::size_t s = 0; s < a.size(); ++s) {
      if (s > 0) line += ", ";
      line += std::to_string(static_cast<int>(a[s]));
    }
    line += "]}";
    pool_lines.push_back(std::move(line));
    pool_shard.push_back(
        ring.lookup_key(serve::canonical_key(space.encode(a))));
  }
  Workload w;
  w.lines.reserve(n);
  w.shard_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(
        rng.randint(0, static_cast<int>(pool) - 1));
    w.lines.push_back(pool_lines[k]);
    w.shard_of.push_back(pool_shard[k]);
  }
  return w;
}

struct SweepPoint {
  double target_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One open-loop run: Poisson arrivals at `target_qps` for ~`seconds`.
/// Client threads share the schedule through an atomic cursor; each thread
/// keeps one connection per shard (direct ring routing).
SweepPoint run_point(const std::vector<std::unique_ptr<Shard>>& shards,
                     const Workload& w, double target_qps, double seconds,
                     std::uint64_t seed) {
  const auto n = std::min<std::size_t>(
      w.lines.size(), static_cast<std::size_t>(target_qps * seconds));
  // Arrival schedule: cumulative exponential inter-arrivals (rate = target).
  std::vector<double> arrival_us(n);
  {
    std::mt19937_64 gen(seed);
    std::exponential_distribution<double> exp(target_qps / 1e6);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += exp(gen);
      arrival_us[i] = t;
    }
  }

  std::atomic<std::size_t> cursor{0};
  std::vector<double> latency_us(n, 0.0);
  std::atomic<std::uint64_t> errors{0};
  const auto start = Clock::now() + std::chrono::milliseconds(20);

  auto client_thread = [&]() {
    std::vector<std::unique_ptr<net::Client>> conns;
    conns.reserve(shards.size());
    net::Client::Options copts;
    copts.retries = 3;
    copts.backoff_us = 200;
    for (const auto& s : shards) {
      conns.push_back(std::make_unique<net::Client>(s->endpoint, copts));
    }
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const auto sched =
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(arrival_us[i]));
      std::this_thread::sleep_until(sched);  // no-op once we fall behind
      try {
        const std::string& response =
            conns[static_cast<std::size_t>(w.shard_of[i])]->roundtrip(
                w.lines[i]);
        benchmark::DoNotOptimize(response);
        latency_us[i] = us_since(sched, Clock::now());
      } catch (const net::NetError&) {
        errors.fetch_add(1, std::memory_order_relaxed);
        latency_us[i] = -1.0;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) threads.emplace_back(client_thread);
  for (auto& t : threads) t.join();
  const double wall_s = us_since(start, Clock::now()) / 1e6;

  SweepPoint p;
  p.target_qps = target_qps;
  std::vector<double> ok;
  ok.reserve(n);
  for (double l : latency_us) {
    if (l >= 0.0) ok.push_back(l);
  }
  p.achieved_qps = wall_s > 0.0 ? static_cast<double>(ok.size()) / wall_s : 0.0;
  if (!ok.empty()) {
    std::sort(ok.begin(), ok.end());
    p.p50_us = ok[ok.size() / 2];
    p.p99_us = ok[std::min(ok.size() - 1, (ok.size() * 99) / 100)];
  }
  if (errors.load() > 0) {
    std::printf("    (%llu transport errors)\n",
                static_cast<unsigned long long>(errors.load()));
  }
  return p;
}

void BM_ClusterRoundtripCached(benchmark::State& state) {
  Shard shard(99);
  net::Client client(shard.endpoint);
  const std::string line = "{\"id\": 0, \"arch\": [0, 1, 2, 3, 4, 5, 6, 0, 1]}";
  benchmark::DoNotOptimize(client.roundtrip(line));  // warm the cache entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.roundtrip(line));
  }
  shard.server.drain_and_stop();
}
BENCHMARK(BM_ClusterRoundtripCached)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale();
  const double seconds = 1.0 * scale;
  const std::vector<double> targets = {1000, 2000, 4000, 8000, 16000};

  std::printf("== cluster load: open-loop Poisson sweep, direct ring routing "
              "==\n");
  std::printf("%d client threads, %.1fs per point, unix sockets, exact "
              "backend (small space), %ld cores\n\n",
              kClientThreads, seconds, sysconf(_SC_NPROCESSORS_ONLN));

  util::CsvWriter csv(bench::data_path("cluster_load.csv"),
                      {"workload", "shards", "target_qps", "achieved_qps",
                       "p50_us", "p99_us"});
  util::Table table(
      {"workload", "shards", "target QPS", "achieved QPS", "p50 us", "p99 us"});

  // Capacity = highest target sustained with p99 under the bound (the usual
  // saturation definition for open-loop sweeps: past capacity the backlog
  // grows without bound and p99 explodes). Indexed [workload][shards].
  constexpr double kSustainedP99Us = 10000.0;
  double capacity[2][3] = {{0.0}};

  for (const char* workload : {"cached", "miss"}) {
    const bool cached = std::string(workload) == "cached";
    for (int num_shards : {1, 2}) {
      std::vector<std::unique_ptr<Shard>> shards;
      std::vector<int> ids;
      for (int s = 0; s < num_shards; ++s) {
        shards.push_back(std::make_unique<Shard>(s));
        ids.push_back(s);
      }
      const cluster::HashRing ring(ids);
      const auto max_n = static_cast<std::size_t>(targets.back() * seconds);
      const Workload w = make_workload(
          shards[0]->arch_space, ring, max_n,
          cached ? kCachedKeyPool : max_n, /*seed=*/41);
      if (cached) {
        // Warmup pass over the pool so the timed runs are pure cache hits.
        net::Client::Options copts;
        std::vector<std::unique_ptr<net::Client>> conns;
        for (const auto& s : shards) {
          conns.push_back(std::make_unique<net::Client>(s->endpoint, copts));
        }
        for (std::size_t i = 0; i < std::min<std::size_t>(w.lines.size(),
                                                          kCachedKeyPool * 4);
             ++i) {
          (void)conns[static_cast<std::size_t>(w.shard_of[i])]->roundtrip(
              w.lines[i]);
        }
      }
      for (double target : targets) {
        if (!cached) {
          // Fresh cache per point so every request stays a miss.
          for (const auto& s : shards) {
            if (s->service.cache() != nullptr) s->service.cache()->clear();
          }
        }
        const SweepPoint p =
            run_point(shards, w, target, seconds, /*seed=*/7 + num_shards);
        std::printf("  %s shards=%d target=%.0f achieved=%.0f p50=%.0fus "
                    "p99=%.0fus\n",
                    workload, num_shards, p.target_qps, p.achieved_qps,
                    p.p50_us, p.p99_us);
        table.add_row({workload, std::to_string(num_shards),
                       util::Table::fmt(p.target_qps, 0),
                       util::Table::fmt(p.achieved_qps, 0),
                       util::Table::fmt(p.p50_us, 1),
                       util::Table::fmt(p.p99_us, 1)});
        csv.add_row({workload, std::to_string(num_shards),
                     util::Table::fmt(p.target_qps, 0),
                     util::Table::fmt(p.achieved_qps, 1),
                     util::Table::fmt(p.p50_us, 2),
                     util::Table::fmt(p.p99_us, 2)});
        if (p.p99_us <= kSustainedP99Us &&
            p.achieved_qps >= 0.9 * p.target_qps) {
          capacity[cached ? 0 : 1][num_shards] = std::max(
              capacity[cached ? 0 : 1][num_shards], p.achieved_qps);
        }
      }
      for (const auto& s : shards) s->server.drain_and_stop();
    }
  }
  csv.flush();
  std::printf("\n%s\n", table.to_string().c_str());

  for (int wl = 0; wl < 2; ++wl) {
    const char* name = wl == 0 ? "cached" : "miss";
    const double ratio =
        capacity[wl][1] > 0.0 ? capacity[wl][2] / capacity[wl][1] : 0.0;
    std::printf("%s workload: sustained capacity (p99 <= %.0fms) 1 shard = "
                "%.0f QPS, 2 shards = %.0f QPS -> %.2fx %s\n",
                name, kSustainedP99Us / 1000.0, capacity[wl][1],
                capacity[wl][2], ratio,
                ratio >= 2.0 ? "(>= 2x scaling met)"
                             : "(below 2x — CPU-bound workloads need >= 2 "
                               "free cores to show shard scaling)");
  }
  std::printf("wrote %s\n\n", bench::data_path("cluster_load.csv").c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
