#!/bin/sh
cd /root/repo || exit 1
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/bench_*; do
  echo "===== $b ====="
  timeout 2400 "$b"
done 2>&1 | tee /root/repo/bench_output.txt
echo DONE_ALL > /root/repo/final_run.done
